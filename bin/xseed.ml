(* xseed: command-line front end for the XSEED cardinality-estimation
   library. Subcommands cover the full paper workflow: generate a corpus,
   inspect it, build a synopsis, estimate queries, evaluate ground truth,
   and compare estimates against actuals over a workload. *)

open Cmdliner

(* Exit-code contract (sysexits.h): 64 usage, 65 malformed data (XML, query,
   synopsis, resource limit), 66 missing input file, 70 internal error, 74
   I/O error. Every command body runs under [protect], so any failure is one
   diagnostic line on stderr — never an OCaml backtrace. *)
let protect f =
  match Core.Error.guard f with
  | Ok () -> ()
  | Error e ->
    Format.eprintf "xseed: %s@." (Core.Error.to_string e);
    exit (Core.Error.exit_code e)
  | exception e ->
    Format.eprintf "xseed: internal error: %s@." (Printexc.to_string e);
    exit 70

let read_file path =
  if not (Sys.file_exists path) then
    Core.Error.raisef Core.Error.Missing_file "no such file: %s" path;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let load_synopsis path =
  match Core.Synopsis.of_string_result (read_file path) with
  | Ok syn -> syn
  | Error e -> raise (Core.Error.Xseed e)

let ok_or_raise = function Ok v -> v | Error e -> raise (Core.Error.Xseed e)

(* Graceful drain: SIGTERM/SIGINT raise this on the main (serving) domain,
   unwinding the serve loop so the normal shutdown path runs — stop
   admission, drain in-flight work, flush journal/trace/telemetry, exit 0. *)
exception Drain_signal of int

(* ------------------------------------------------------------------ *)
(* Arguments. Positional paths are plain strings — existence is checked by
   [read_file] so a missing file exits 66, not cmdliner's usage error. *)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"XML document")

let query_arg p =
  Arg.(required & pos p (some string) None & info [] ~docv:"QUERY" ~doc:"XPath query")

let threshold_arg =
  Arg.(value & opt float 0.5
       & info [ "card-threshold" ] ~docv:"T"
           ~doc:"Traveler pruning threshold (paper uses 20 for Treebank)")

let budget_arg =
  Arg.(value & opt (some int) None
       & info [ "budget" ] ~docv:"BYTES" ~doc:"Total memory budget for kernel + HET")

let no_het_arg =
  Arg.(value & flag & info [ "no-het" ] ~doc:"Build the kernel only, no hyper-edge table")

let mbp_arg =
  Arg.(value & opt int 1
       & info [ "mbp" ] ~docv:"N" ~doc:"Max branching predicates per HET pattern")

let bsel_arg =
  Arg.(value & opt float 0.1
       & info [ "bsel-threshold" ] ~docv:"B"
           ~doc:"Backward-selectivity threshold for HET branching candidates")

let with_values_arg =
  Arg.(value & flag
       & info [ "with-values" ]
           ~doc:"Also build the value synopsis (histograms for value predicates)")

(* ------------------------------------------------------------------ *)
(* Observability plumbing: --trace / --metrics-out build an Obs context
   threaded through the pipeline; instrumentation is otherwise off. *)

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Trace pipeline spans and counters to stderr (human-readable)")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write pipeline metrics as JSON-lines to $(docv) (takes \
                 precedence over --trace)")

(* Deferred to inside [protect] (cmdliner evaluates term arguments outside
   the command body, where an exception would become a backtrace). *)
let obs_of (trace, metrics_out) =
  match (trace, metrics_out) with
  | false, None -> None
  | _, Some path ->
    let sink =
      try Obs.jsonl_file path
      with Sys_error msg ->
        Core.Error.raisef Core.Error.Io_error "--metrics-out: %s" msg
    in
    Some (Obs.create ~sink ())
  | true, None -> Some (Obs.create ~sink:Obs.Stderr ())

(* Final snapshot then release the sink (flushes/closes a JSON-lines file). *)
let finish_obs ?het obs =
  match obs with
  | None -> ()
  | Some o ->
    (match het with Some h -> Core.Het.publish_counters ~obs:o h | None -> ());
    Obs.emit_snapshot o;
    Obs.close o

let obs_term = Term.(const (fun trace metrics_out -> (trace, metrics_out))
                     $ trace_arg $ metrics_out_arg)

(* ------------------------------------------------------------------ *)
(* Commands *)

let stats_cmd =
  let run file =
    protect @@ fun () ->
    let doc = read_file file in
    let s = Xml.Doc_stats.of_string doc in
    Format.printf "%a@." Xml.Doc_stats.pp s;
    let pt = Pathtree.Path_tree.of_string doc in
    Format.printf "distinct rooted paths: %d@." (Pathtree.Path_tree.size pt);
    let kernel = Core.Builder.of_string doc in
    Format.printf "XSEED kernel: %d vertices, %d edges, %d bytes@."
      (Core.Kernel.vertex_count kernel)
      (Core.Kernel.edge_count kernel)
      (Core.Kernel.size_in_bytes kernel)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Document characteristics (Table 2's left half)")
    Term.(const run $ file_arg)

let build_cmd =
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Synopsis output file")
  in
  let run file output no_het budget mbp bsel threshold with_values obs_spec =
    protect @@ fun () ->
    let obs = obs_of obs_spec in
    let doc = read_file file in
    let synopsis =
      Core.Synopsis.build ?budget_bytes:budget ~with_het:(not no_het)
        ~with_values ~mbp ~bsel_threshold:bsel ~card_threshold:threshold ?obs doc
    in
    write_file output (Core.Synopsis.to_string synopsis);
    Format.printf "%a@.wrote %s (%d bytes in memory)@." Core.Synopsis.pp synopsis
      output
      (Core.Synopsis.size_in_bytes synopsis);
    finish_obs ?het:(Core.Synopsis.het synopsis) obs
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build an XSEED synopsis (kernel + HET) from a document")
    Term.(const run $ file_arg $ output $ no_het_arg $ budget_arg $ mbp_arg
          $ bsel_arg $ threshold_arg $ with_values_arg $ obs_term)

let synopsis_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"SYNOPSIS" ~doc:"Synopsis file from 'xseed build'")

let override_threshold_arg =
  Arg.(value & opt (some float) None
       & info [ "card-threshold" ] ~docv:"T"
           ~doc:"Override the pruning threshold stored in the synopsis")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit with code 1 (after printing the result) if the estimate \
                 needed a degenerate-value clamp or the query names labels \
                 absent from the synopsis")

let estimator_of ?obs ~threshold syn =
  Core.Estimator.create
    ~card_threshold:
      (Option.value threshold ~default:(Core.Synopsis.card_threshold syn))
    ?het:(Core.Synopsis.het syn)
    ?values:(Core.Synopsis.values syn)
    ?obs
    (Core.Synopsis.kernel syn)

let strict_failures ~clamped ~unknown_labels =
  if clamped > 0 then
    Format.eprintf "xseed: strict: estimate was clamped from a degenerate value@.";
  if unknown_labels <> [] then
    Format.eprintf "xseed: strict: label%s not in synopsis: %s@."
      (if List.length unknown_labels = 1 then "" else "s")
      (String.concat ", " unknown_labels);
  clamped > 0 || unknown_labels <> []

let estimate_cmd =
  let run synopsis_file query threshold strict obs_spec =
    protect @@ fun () ->
    let obs = obs_of obs_spec in
    let syn = load_synopsis synopsis_file in
    let estimator = estimator_of ?obs ~threshold syn in
    let outcome =
      Obs.span ?obs "estimate" (fun () ->
          Core.Estimator.estimate_string_result estimator query)
    in
    match outcome with
    | Error e -> raise (Core.Error.Xseed e)
    | Ok o ->
      Format.printf "%.2f@." o.Core.Estimator.value;
      finish_obs ?het:(Core.Synopsis.het syn) obs;
      if
        strict
        && strict_failures ~clamped:o.Core.Estimator.clamped
             ~unknown_labels:o.Core.Estimator.unknown_labels
      then exit 1
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate a query's cardinality from a synopsis")
    Term.(const run $ synopsis_arg $ query_arg 1 $ override_threshold_arg
          $ strict_arg $ obs_term)

let explain_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the report as a single JSON object")
  in
  let run synopsis_file query threshold json strict obs_spec =
    protect @@ fun () ->
    let obs = obs_of obs_spec in
    let syn = load_synopsis synopsis_file in
    let estimator = estimator_of ?obs ~threshold syn in
    let report = Core.Explain.run_string ?obs estimator query in
    if json then print_endline (Obs.Json.to_string (Core.Explain.to_json report))
    else Format.printf "%a@." Core.Explain.pp report;
    finish_obs ?het:(Core.Synopsis.het syn) obs;
    if
      strict
      && strict_failures ~clamped:report.Core.Explain.degenerate_clamps
           ~unknown_labels:report.Core.Explain.unknown_labels
    then exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Estimate one query and report what the pipeline did: wall-clock \
             per stage, EPT nodes emitted vs pruned, matcher frontier peak, \
             HET hits/misses, and which estimation assumptions fired")
    Term.(const run $ synopsis_arg $ query_arg 1 $ override_threshold_arg
          $ json_arg $ strict_arg $ obs_term)

let evaluate_cmd =
  let run file query =
    protect @@ fun () ->
    let doc = read_file file in
    (* Always collect values: the CLI cannot know whether the query needs
       them, and the extra pass cost is irrelevant interactively. *)
    let storage = Nok.Storage.of_string ~with_values:true doc in
    Format.printf "%d@." (Nok.Eval.cardinality storage (Xpath.Parser.parse query))
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Actual cardinality via the NoK evaluator")
    Term.(const run $ file_arg $ query_arg 1)

let ept_cmd =
  let run file threshold =
    protect @@ fun () ->
    let doc = read_file file in
    let kernel = Core.Builder.of_string doc in
    print_endline (Core.Traveler.ept_to_xml ~card_threshold:threshold kernel)
  in
  Cmd.v
    (Cmd.info "ept" ~doc:"Dump the expanded path tree as XML (paper Section 4)")
    Term.(const run $ file_arg $ threshold_arg)

let generate_cmd =
  let corpus =
    Arg.(required & pos 0 (some (enum [ ("dblp", `Dblp); ("xmark", `Xmark);
                                        ("treebank", `Treebank); ("paper", `Paper) ]))
           None
         & info [] ~docv:"CORPUS" ~doc:"One of dblp, xmark, treebank, paper")
  in
  let scale =
    Arg.(value & opt int 1000
         & info [ "scale" ] ~docv:"N"
             ~doc:"records (dblp) / items (xmark) / sentences (treebank)")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed") in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output XML file")
  in
  let run corpus scale seed output =
    protect @@ fun () ->
    let doc =
      match corpus with
      | `Dblp -> Datagen.Dblp.generate ~seed ~records:scale ()
      | `Xmark -> Datagen.Xmark.generate ~seed ~items:scale ()
      | `Treebank -> Datagen.Treebank.generate ~seed ~sentences:scale ()
      | `Paper -> Datagen.Paper_example.document
    in
    write_file output doc;
    Format.printf "wrote %s (%d bytes)@." output (String.length doc)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic corpus (paper Section 6.1)")
    Term.(const run $ corpus $ scale $ seed $ output)

let workload_cmd =
  let kind =
    Arg.(value
         & opt (enum [ ("sp", `Sp); ("bp", `Bp); ("cp", `Cp); ("valued", `Valued) ]) `Bp
         & info [ "kind" ] ~docv:"KIND" ~doc:"sp, bp, cp or valued")
  in
  let count = Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Queries") in
  let mbp = Arg.(value & opt int 1 & info [ "mbp" ] ~docv:"M" ~doc:"Max predicates/step") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed") in
  let run file kind count mbp seed =
    protect @@ fun () ->
    let doc = read_file file in
    let pt = Pathtree.Path_tree.of_string doc in
    let rng = Datagen.Rng.create ~seed in
    let queries =
      match kind with
      | `Sp -> Datagen.Workload.all_simple_paths pt
      | `Bp -> Datagen.Workload.branching pt ~rng ~count ~mbp ()
      | `Cp -> Datagen.Workload.complex pt ~rng ~count ~mbp ()
      | `Valued ->
        let storage = Nok.Storage.of_string ~with_values:true doc in
        Datagen.Workload.valued pt ~storage ~rng ~count ()
    in
    List.iter (fun q -> print_endline (Xpath.Ast.to_string q)) queries
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a query workload from a document's path tree")
    Term.(const run $ file_arg $ kind $ count $ mbp $ seed)

let compare_cmd =
  let count = Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Queries/kind") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed") in
  let run file no_het budget bsel threshold count seed with_values obs_spec =
    protect @@ fun () ->
    let obs = obs_of obs_spec in
    let doc = read_file file in
    let synopsis =
      Core.Synopsis.build ?budget_bytes:budget ~with_het:(not no_het)
        ~with_values ~bsel_threshold:bsel ~card_threshold:threshold ?obs doc
    in
    let storage = Nok.Storage.of_string ~with_values doc in
    let pt = Pathtree.Path_tree.of_string doc in
    let rng = Datagen.Rng.create ~seed in
    let estimator = Core.Synopsis.estimator synopsis in
    let run_kind name queries =
      match queries with
      | [] -> ()
      | _ ->
        let pairs =
          Obs.span ?obs ("compare." ^ name) (fun () ->
              List.map
                (fun q ->
                  let est =
                    match obs with
                    | None -> Core.Estimator.estimate estimator q
                    | Some o ->
                      (* per-query estimation latency, in microseconds *)
                      let t0 = Obs.now_mono () in
                      let est = Core.Estimator.estimate estimator q in
                      Obs.observe ~obs:o "compare.estimate_us"
                        (1e6 *. (Obs.now_mono () -. t0));
                      est
                  in
                  (est, float_of_int (Nok.Eval.cardinality storage q)))
                queries)
        in
        let s = Stats.Metrics.summarize pairs in
        Format.printf "%-4s %a@." name Stats.Metrics.pp s;
        match obs with
        | None -> ()
        | Some o ->
          Obs.event ~obs:o "compare.summary"
            ~fields:
              [ ("kind", Obs.Json.String name);
                ("queries", Obs.Json.Int s.count);
                ("nrmse", Obs.Json.Float s.nrmse);
                ("opd", Obs.Json.Float s.opd);
                ("q_error_median", Obs.Json.Float s.q_error_median);
                ("q_error_p90", Obs.Json.Float s.q_error_p90);
                ("q_error_max", Obs.Json.Float s.q_error_max) ]
    in
    run_kind "SP" (Datagen.Workload.all_simple_paths pt);
    run_kind "BP" (Datagen.Workload.branching pt ~rng ~count ());
    run_kind "CP" (Datagen.Workload.complex pt ~rng ~count ());
    if with_values then
      run_kind "VAL" (Datagen.Workload.valued pt ~storage ~rng ~count ());
    finish_obs ?het:(Core.Synopsis.het synopsis) obs
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Estimate vs actual over generated workloads")
    Term.(const run $ file_arg $ no_het_arg $ budget_arg $ bsel_arg $ threshold_arg
          $ count $ seed $ with_values_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* Serving: a long-lived engine over one synopsis. *)

let qerror_threshold_arg =
  Arg.(value & opt float 2.0
       & info [ "qerror-threshold" ] ~docv:"Q"
           ~doc:"Minimum q-error at which execution feedback refines the HET")

let cache_capacity_arg =
  Arg.(value & opt int 1024
       & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Estimate-cache capacity (entries)")

let telemetry_out_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry-out" ] ~docv:"FILE"
           ~doc:"Append every flight record (one JSON object per served \
                 query) to $(docv) as JSON-lines")

let snapshot_every_arg =
  Arg.(value & opt (some int) None
       & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Emit a metrics snapshot to the --trace/--metrics-out sink \
                 every $(docv) requests")

let drift_p90_arg =
  Arg.(value & opt float 8.0
       & info [ "drift-p90" ] ~docv:"Q"
           ~doc:"Alert (bump engine.drift.alerts) when the sliding-window \
                 p90 q-error of feedback reaches $(docv)")

let workers_arg =
  Arg.(value & opt int 1
       & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains. 1 (default) serves on a single engine; \
                 N >= 2 shares the synopsis across an $(b,Engine.Pool) of \
                 $(docv) domains with per-domain caches and single-writer \
                 feedback")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record a causal trace of the serving path and write it to \
                 $(docv) at exit as Chrome trace-event JSON (open in \
                 Perfetto or chrome://tracing; validate with $(b,xseed \
                 trace-lint))")

let queue_capacity_arg =
  Arg.(value & opt int 256
       & info [ "queue-capacity" ] ~docv:"N"
           ~doc:"Admission-queue capacity of the worker pool (jobs); only \
                 meaningful with --workers >= 2")

let deadline_ms_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline in milliseconds, measured on the \
                 monotonic clock from admission. A request that overruns it \
                 answers ERR timeout instead of executing. 0 or absent \
                 disables deadlines")

let shed_policy_arg =
  Arg.(value
       & opt (enum [ ("block", `Block); ("shed-newest", `Shed_newest) ]) `Block
       & info [ "shed-policy" ] ~docv:"POLICY"
           ~doc:"What a full admission queue does to new requests: 'block' \
                 (default) applies backpressure, 'shed-newest' answers ERR \
                 overloaded immediately")

let max_batch_arg =
  Arg.(value & opt int Engine.Serve.max_batch
       & info [ "max-batch" ] ~docv:"N"
           ~doc:"Upper bound on a single BATCH/PROFILE count; larger frames \
                 are rejected with an ERR naming the limit before any \
                 payload line is read")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Crash-safe feedback journal: replay $(docv) through the \
                 feedback path at startup (recovering a torn or corrupt \
                 tail by truncation), then append every accepted FEEDBACK \
                 to it before acknowledging")

let journal_fsync_arg =
  Arg.(value & opt string "always"
       & info [ "journal-fsync" ] ~docv:"POLICY"
           ~doc:"Journal durability: 'always' fsyncs every append, 'never' \
                 leaves flushing to the OS, an integer N fsyncs every Nth \
                 append")

(* Shadow auditing (DESIGN.md §15): sampled ground-truth q-error. *)

let audit_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "audit-rate" ] ~docv:"RATE"
           ~doc:"Shadow-audit sample rate within [0, 1]: a deterministic \
                 hash of each served query's canonical form selects that \
                 fraction for background exact evaluation against the \
                 source document (--audit-doc, or the manifest's doc= \
                 field), feeding the AUDIT verb's true q-error window. 0 \
                 (the default) disables auditing")

let audit_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "audit-seed" ] ~docv:"N"
           ~doc:"Seed for the audit sampler's hash stream; the same seed \
                 and rate always select the same queries, regardless of \
                 arrival order")

let audit_feedback_arg =
  Arg.(value & flag
       & info [ "audit-feedback" ]
           ~doc:"Let audited ground truth drive the q-error-gated HET \
                 refinement path, as if each audited query had sent \
                 FEEDBACK")

let audit_doc_arg =
  Arg.(value & opt (some string) None
       & info [ "audit-doc" ] ~docv:"FILE"
           ~doc:"Source XML document the audit domain replays sampled \
                 queries against (single-synopsis modes; registry tenants \
                 declare theirs with doc= in the manifest)")

(* TCP transport (absent = the classic stdin/stdout line protocol). *)

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Serve the same protocol over TCP on $(docv) instead of \
                 stdin/stdout, as length-prefixed CRC-checked frames behind \
                 a HELLO handshake (see 'xseed client'). 0 picks an \
                 ephemeral port; the bound address is printed to stderr")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address for --port")

let max_conns_arg =
  Arg.(value & opt int 64
       & info [ "max-conns" ] ~docv:"N"
           ~doc:"Concurrent TCP connection cap; connections beyond it are \
                 refused with one ERR overloaded frame naming the limit")

let idle_timeout_ms_arg =
  Arg.(value & opt float 60_000.0
       & info [ "idle-timeout-ms" ] ~docv:"MS"
           ~doc:"Close a TCP connection idle for $(docv) ms with ERR \
                 timeout; 0 disables the timeout")

let max_frame_arg =
  Arg.(value & opt int Net.Frame.default_max_payload
       & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Per-frame payload cap; a frame header claiming more is \
                 answered ERR limit-exceeded and the connection closed")

(* Multi-tenant registry mode (--manifest replaces the positional synopsis). *)

let manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Serve a registry of named synopses instead of a single \
                 one: each manifest line is '<name> <path>' ('#' comments; \
                 relative paths resolve against the manifest). Clients pick \
                 a tenant with USE <name>; tenants page in on first use and \
                 the least recently used are evicted under --memory-budget")

let memory_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "memory-budget" ] ~docv:"BYTES"
           ~doc:"Global cap on the sum of resident synopsis sizes in \
                 registry mode; exceeding it evicts least-recently-used \
                 tenants (flushing their journals first)")

let het_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "het-budget" ] ~docv:"BYTES"
           ~doc:"Per-tenant HET memory budget applied at page-in \
                 (registry mode)")

let journal_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "journal-dir" ] ~docv:"DIR"
           ~doc:"Registry-mode feedback journals: each tenant appends to \
                 $(docv)/<tenant>.wal, replayed at page-in so eviction \
                 cannot lose learned state")

let fsync_of = function
  | "always" -> `Always
  | "never" -> `Never
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 1 -> `Every n
     | _ ->
       Core.Error.raisef Core.Error.Malformed_query
         "--journal-fsync expects 'always', 'never' or a positive integer \
          (got %S)"
         s)

(* Build the trace session (when requested) and return it with a finalizer
   that exports the merged rings. Export failures are I/O errors (74). *)
let trace_of trace_out =
  match trace_out with
  | None -> (None, fun () -> ())
  | Some path ->
    let tr = Obs.Trace.create () in
    ( Some tr,
      fun () ->
        try Obs.Trace.write tr path
        with Sys_error msg ->
          Core.Error.raisef Core.Error.Io_error "--trace-out: %s" msg )

let serve_synopsis_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"SYNOPSIS"
           ~doc:"Synopsis file from 'xseed build' (omit it when serving a \
                 --manifest registry instead)")

let serve_cmd =
  let run synopsis_file threshold qerror_threshold cache_capacity telemetry_out
      snapshot_every drift_p90 workers queue_capacity deadline_ms shed_policy
      max_batch journal_path journal_fsync trace_out port host max_conns
      idle_timeout_ms max_frame manifest memory_budget het_budget journal_dir
      audit_rate audit_seed audit_feedback audit_doc obs_spec =
    protect @@ fun () ->
    (match snapshot_every with
     | Some n when n < 1 ->
       Core.Error.raisef Core.Error.Malformed_query
         "--snapshot-every must be >= 1"
     | _ -> ());
    if workers < 1 then
      Core.Error.raisef Core.Error.Malformed_query "--workers must be >= 1";
    if queue_capacity < 1 then
      Core.Error.raisef Core.Error.Malformed_query
        "--queue-capacity must be >= 1";
    if max_batch < 1 then
      Core.Error.raisef Core.Error.Malformed_query "--max-batch must be >= 1";
    if max_conns < 1 then
      Core.Error.raisef Core.Error.Malformed_query "--max-conns must be >= 1";
    if max_frame < 1 then
      Core.Error.raisef Core.Error.Malformed_query "--max-frame must be >= 1";
    if idle_timeout_ms < 0.0 || Float.is_nan idle_timeout_ms then
      Core.Error.raisef Core.Error.Malformed_query
        "--idle-timeout-ms must be >= 0";
    if Float.is_nan audit_rate || audit_rate < 0.0 || audit_rate > 1.0 then
      Core.Error.raisef Core.Error.Malformed_query
        "--audit-rate must be within [0, 1]";
    (match (synopsis_file, manifest) with
     | None, None ->
       Core.Error.raisef Core.Error.Malformed_query
         "give a SYNOPSIS file or --manifest"
     | Some _, Some _ ->
       Core.Error.raisef Core.Error.Malformed_query
         "give a SYNOPSIS file or --manifest, not both"
     | _ -> ());
    if manifest <> None then begin
      (* The registry is the many-documents axis: each tenant is one
         single-threaded engine behind the registry lock. The pool's
         many-cores knobs (and the single-synopsis journal/trace flags)
         don't compose with it, so refuse rather than silently ignore. *)
      if workers <> 1 then
        Core.Error.raisef Core.Error.Malformed_query
          "--workers is not supported with --manifest (tenants serve on \
           single-threaded engines behind the registry lock)";
      List.iter
        (fun (present, flag, hint) ->
          if present then
            Core.Error.raisef Core.Error.Malformed_query
              "%s is not supported with --manifest%s" flag hint)
        [ (journal_path <> None, "--journal",
           " (use --journal-dir for per-tenant journals)");
          (deadline_ms <> None, "--deadline-ms", "");
          (trace_out <> None, "--trace-out", "");
          (telemetry_out <> None, "--telemetry-out", "");
          (audit_doc <> None, "--audit-doc",
           " (declare each tenant's document with doc= in the manifest)") ]
    end
    else begin
      List.iter
        (fun (present, flag) ->
          if present then
            Core.Error.raisef Core.Error.Malformed_query
              "%s requires --manifest" flag)
        [ (memory_budget <> None, "--memory-budget");
          (het_budget <> None, "--het-budget");
          (journal_dir <> None, "--journal-dir") ];
      if audit_rate > 0.0 && audit_doc = None then
        Core.Error.raisef Core.Error.Malformed_query
          "--audit-rate needs --audit-doc (the source document ground \
           truth is evaluated against)";
      if audit_doc <> None && audit_rate <= 0.0 then
        Core.Error.raisef Core.Error.Malformed_query
          "--audit-doc without --audit-rate never audits anything; give \
           --audit-rate"
    end;
    let deadline_s =
      match deadline_ms with
      | None -> None
      | Some ms when ms < 0.0 || Float.is_nan ms ->
        Core.Error.raisef Core.Error.Malformed_query
          "--deadline-ms must be >= 0"
      | Some ms when ms = 0.0 -> None
      | Some ms -> Some (ms /. 1000.0)
    in
    let fsync = fsync_of journal_fsync in
    let idle_timeout_s =
      if idle_timeout_ms = 0.0 then None else Some (idle_timeout_ms /. 1000.0)
    in
    (* Serving always keeps a metrics registry (the METRICS scrape needs
       one even without --trace/--metrics-out), shared with the estimator
       so pipeline counters land beside the engine's. *)
    let obs =
      match obs_of obs_spec with Some o -> o | None -> Obs.create ()
    in
    let telemetry_oc, set_on_record =
      match telemetry_out with
      | None -> (None, fun _ -> ())
      | Some path ->
        let oc =
          try open_out path
          with Sys_error msg ->
            Core.Error.raisef Core.Error.Io_error "--telemetry-out: %s" msg
        in
        ( Some oc,
          fun install ->
            install (fun r ->
                output_string oc
                  (Obs.Json.to_string (Engine.Flight_recorder.to_json r));
                output_char oc '\n';
                flush oc) )
    in
    let trace, write_trace = trace_of trace_out in
    let requests = ref 0 in
    (* SIGTERM/SIGINT may be delivered on any domain. Only the main domain
       may unwind the serve loop by raising (interrupting the blocked
       [input_line]); a worker domain just records the request, which the
       main domain converts into a raise after the in-flight request. *)
    let drain_pending = Atomic.make 0 in
    let main_domain = Domain.self () in
    let install_signals () =
      let handler signum =
        if Domain.self () = main_domain then raise (Drain_signal signum)
        else Atomic.set drain_pending signum
      in
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle handler))
        [ Sys.sigterm; Sys.sigint ]
    in
    let on_request publish () =
      (match Atomic.get drain_pending with
       | 0 -> ()
       | signum -> raise (Drain_signal signum));
      incr requests;
      match snapshot_every with
      | Some n when !requests mod n = 0 ->
        publish ();
        Obs.emit_snapshot obs
      | _ -> ()
    in
    let drained = ref None in
    let journal = ref None in
    (* One transport switch for every mode: without --port the classic
       stdin/stdout line protocol, with it the framed TCP loop. The TCP
       server makes a session per connection; stdin is one session. *)
    let run_transport ~make_session publish =
      install_signals ();
      match port with
      | None ->
        let server, extra = make_session () in
        (try
           Engine.Serve.run ~on_request:(on_request publish) ~max_batch ~extra
             server stdin stdout
         with Drain_signal signum -> drained := Some signum)
      | Some p ->
        let srv =
          ok_or_raise
            (Net.Server.create
               {
                 Net.Server.host;
                 port = p;
                 max_connections = max_conns;
                 idle_timeout_s;
                 max_frame_bytes = max_frame;
               })
        in
        (* The smoke scripts grep this line for the ephemeral port. *)
        Format.eprintf "xseed serve: listening on %s:%d@." host
          (Net.Server.port srv);
        (try
           Net.Server.run ~on_request:(on_request publish) ~max_batch srv
             ~make_session ()
         with Drain_signal signum -> drained := Some signum)
    in
    let no_extra _ _ = None in
    (* Journal startup: recover (truncating a dirty tail), replay the
       surviving entries through the live feedback path so the learned HET
       state matches the pre-crash engine, then append from here on.
       Recovery runs once against [base_server]; the returned wrapper is
       applied to every session's vtable (the pool mints one per TCP
       connection for affinity routing), all appending to one writer. *)
    let journal_wrap base_server =
      match journal_path with
      | None -> fun s -> s
      | Some path ->
        let scan = ok_or_raise (Engine.Journal.recover path) in
        (match scan.Engine.Journal.tail with
         | Engine.Journal.Clean -> ()
         | Engine.Journal.Torn off ->
           Format.eprintf
             "xseed serve: journal %s: torn tail at byte %d (crash \
              residue); truncated to %d bytes@."
             path off scan.Engine.Journal.valid_bytes
         | Engine.Journal.Corrupt off ->
           Format.eprintf
             "xseed serve: journal %s: corrupt frame at byte %d; \
              truncated to %d bytes@."
             path off scan.Engine.Journal.valid_bytes);
        let failed = ref 0 in
        List.iter
          (fun (e : Engine.Journal.entry) ->
            match
              base_server.Engine.Serve.feedback e.Engine.Journal.query
                ~actual:e.Engine.Journal.actual
            with
            | Ok _ -> ()
            | Error _ -> incr failed)
          scan.Engine.Journal.entries;
        if scan.Engine.Journal.frames > 0 then
          Format.eprintf
            "xseed serve: journal %s: replayed %d feedback entries%s@."
            path scan.Engine.Journal.frames
            (if !failed = 0 then ""
             else Printf.sprintf " (%d failed to apply)" !failed);
        let w = ok_or_raise (Engine.Journal.open_append ~fsync path) in
        journal := Some w;
        fun s -> Engine.Journal.wrap_server w s
    in
    let with_journal base_server = journal_wrap base_server base_server in
    (match manifest with
     | Some manifest_path ->
       let reg =
         Engine.Registry.create ?memory_budget ?het_budget ~qerror_threshold
           ~cache_capacity ~drift_p90_threshold:drift_p90 ?journal_dir
           ~journal_fsync:fsync ~audit_rate ?audit_seed ~audit_feedback ()
       in
       let n = ok_or_raise (Engine.Registry.load_manifest reg manifest_path) in
       Format.eprintf
         "xseed serve: registry: %d tenant%s from %s%s; clients select one \
          with USE <tenant>@."
         n
         (if n = 1 then "" else "s")
         manifest_path
         (match memory_budget with
          | None -> ""
          | Some b -> Printf.sprintf " under a %d-byte budget" b);
       Fun.protect
         ~finally:(fun () -> Engine.Registry.close reg)
         (fun () ->
           run_transport
             ~make_session:(fun () ->
               let s = Engine.Registry.session reg in
               (Engine.Registry.server s, Engine.Registry.extra s))
             (fun () -> ()))
     | None ->
       let synopsis_file = Option.get synopsis_file in
       let syn = load_synopsis synopsis_file in
       let estimator = estimator_of ~obs ~threshold syn in
       Format.eprintf "xseed serve: %s loaded (%d worker%s)@." synopsis_file
         workers
         (if workers = 1 then "" else "s");
       (* The shadow auditor loads its own private estimator from the
          synopsis file on the audit domain, so it never shares mutable
          state with the serving estimator. *)
       let auditor =
         match audit_doc with
         | Some doc when audit_rate > 0.0 ->
           Format.eprintf
             "xseed serve: shadow audit armed: rate %g against %s%s@."
             audit_rate doc
             (if audit_feedback then " (feedback enabled)" else "");
           Some
             (Engine.Auditor.create ?seed:audit_seed ~feedback:audit_feedback
                ?trace ~rate:audit_rate
                (Engine.Auditor.Paths { synopsis = synopsis_file; doc }))
         | _ -> None
       in
       if workers = 1 then begin
         let engine =
           Engine.create ~qerror_threshold ~cache_capacity
             ~drift_p90_threshold:drift_p90 ~obs ?trace ?deadline_s estimator
         in
         Option.iter (Engine.set_auditor engine) auditor;
         set_on_record (Engine.set_on_record engine);
         let server = with_journal (Engine.server engine) in
         run_transport
           ~make_session:(fun () -> (server, no_extra))
           (fun () -> Engine.publish_telemetry engine);
         (* Drain: let in-flight audits finish and fold them into the
            final telemetry snapshot before the registry is flushed. *)
         (match auditor with
          | None -> ()
          | Some a ->
            ignore (Engine.Auditor.settle a : bool);
            Engine.drain_audits engine;
            Engine.Auditor.shutdown a);
         Engine.publish_telemetry engine
       end
       else begin
         let pool =
           Engine.Pool.create ~workers ~qerror_threshold ~cache_capacity
             ~drift_p90_threshold:drift_p90 ~queue_capacity ?trace ?deadline_s
             ~shed_policy ?auditor estimator
         in
         set_on_record (Engine.Pool.set_on_record pool);
         (* Journal recovery replays once through a no-affinity vtable;
            each TCP connection then gets its own vtable with the
            connection counter as affinity token, so a session's chunks
            keep landing on the shard whose cache it has warmed (stdin is
            a single session — plain round-robin planning serves it
            better than pinning one shard). *)
         let wrap = journal_wrap (Engine.Pool.server pool) in
         let base_server = wrap (Engine.Pool.server pool) in
         let next_conn = ref 0 in
         Fun.protect
           ~finally:(fun () ->
             Engine.Pool.shutdown pool;
             Option.iter Engine.Auditor.shutdown auditor)
           (fun () ->
             run_transport
               ~make_session:(fun () ->
                 match port with
                 | None -> (base_server, no_extra)
                 | Some _ ->
                   incr next_conn;
                   ( wrap (Engine.Pool.server ~affinity:!next_conn pool),
                     no_extra ))
               (fun () -> ()))
       end);
    (* Drain ordering (DESIGN.md §13): admission already stopped (the serve
       loop has exited) and in-flight work drained (Pool.shutdown above);
       now flush durable state — trace, journal, telemetry, metrics. *)
    write_trace ();
    (match !journal with Some w -> Engine.Journal.close w | None -> ());
    Option.iter close_out telemetry_oc;
    finish_obs (Some obs);
    match !drained with
    | None -> ()
    | Some signum ->
      (* Fall through to the normal exit path: a drained stop is exit 0. *)
      Format.eprintf
        "xseed serve: received %s; drained in-flight work and flushed \
         state@."
        (if signum = Sys.sigterm then "SIGTERM" else "SIGINT")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve estimates on a stdin/stdout line protocol (default) or \
             over TCP with --port (framed, CRC-checked, HELLO handshake; \
             drive it with 'xseed client'): ESTIMATE <query>, BATCH <n> \
             (then n query lines), FEEDBACK <query> <actual>, EXPLAIN \
             <query>, STATS, METRICS (Prometheus text), RECENT [n] (flight \
             records), DRIFT (sliding-window accuracy), AUDIT (shadow-audit \
             true q-error window and worst-step attribution; armed by \
             --audit-rate with --audit-doc or manifest doc= fields), PING, \
             VERSION. One \
             positional SYNOPSIS serves a single synopsis (--workers N \
             spreads estimates across N domains sharing it); --manifest \
             serves a registry of named synopses with USE <tenant> \
             selection, LRU paging under --memory-budget, and per-tenant \
             journals under --journal-dir. Failure handling: --deadline-ms \
             bounds each request (ERR timeout), --shed-policy shed-newest \
             refuses over a full --queue-capacity (ERR overloaded), \
             --journal makes feedback crash-safe, and SIGTERM/SIGINT drain \
             in-flight work then exit 0")
    Term.(const run $ serve_synopsis_arg $ override_threshold_arg
          $ qerror_threshold_arg $ cache_capacity_arg $ telemetry_out_arg
          $ snapshot_every_arg $ drift_p90_arg $ workers_arg
          $ queue_capacity_arg $ deadline_ms_arg $ shed_policy_arg
          $ max_batch_arg $ journal_arg $ journal_fsync_arg $ trace_out_arg
          $ port_arg $ host_arg $ max_conns_arg $ idle_timeout_ms_arg
          $ max_frame_arg $ manifest_arg $ memory_budget_arg $ het_budget_arg
          $ journal_dir_arg $ audit_rate_arg $ audit_seed_arg
          $ audit_feedback_arg $ audit_doc_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* Offline shadow audit: replay a workload against synopsis + document,
   emitting the same per-query attribution records the serving auditor
   writes to the flight ring, then a summary whose "window" object is
   rendered by the same code path as the AUDIT verb's — so a served
   session and this report agree to float equality. *)

let audit_cmd =
  let audit_doc_pos_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"DOC"
             ~doc:"Source XML document (the ground truth)")
  in
  let workload_pos_arg =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Workload file, one XPath query per line ('#' comments \
                   and blank lines ignored)")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the JSON-lines attribution report to $(docv) \
                   (default stdout)")
  in
  let rate_arg =
    Arg.(value & opt float 1.0
         & info [ "rate" ] ~docv:"RATE"
             ~doc:"Sample rate within [0, 1], over the same deterministic \
                   hash stream 'serve --audit-rate' uses; default 1.0 \
                   audits every query")
  in
  let seed_arg =
    Arg.(value & opt int 0x5eed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Sampler seed; match the server's --audit-seed for the \
                   sampled subsets to coincide")
  in
  let run synopsis_file doc workload out rate seed threshold =
    protect @@ fun () ->
    if Float.is_nan rate || rate < 0.0 || rate > 1.0 then
      Core.Error.raisef Core.Error.Malformed_query
        "--rate must be within [0, 1]";
    let syn = load_synopsis synopsis_file in
    let estimator = estimator_of ~threshold syn in
    let ept = lazy (Core.Estimator.ept estimator) in
    let storage = Nok.Storage.of_string ~with_values:true (read_file doc) in
    let workload_text = read_file workload in
    let oc, close =
      match out with
      | None -> (stdout, fun () -> flush stdout)
      | Some path ->
        (try
           let oc = open_out path in
           (oc, fun () -> close_out oc)
         with Sys_error msg ->
           Core.Error.raisef Core.Error.Io_error "--out: %s" msg)
    in
    Fun.protect ~finally:close @@ fun () ->
    let emit json =
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n'
    in
    let seen = ref 0
    and skipped = ref 0
    and failed = ref 0
    and qerrors = ref [] in
    String.split_on_char '\n' workload_text
    |> List.iter (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then ()
           else begin
             incr seen;
             let audit_line () =
               match Xpath.Parser.parse_result line with
               | Error { Xpath.Parser.position; message } ->
                 Error
                   (Printf.sprintf "parse error at %d: %s" position message)
               | Ok ast ->
                 let ast = Engine.Canonical.canonicalize ast in
                 let key = Engine.Canonical.of_ast ast in
                 if not (Engine.Auditor.in_sample ~seed ~rate
                           key.Engine.Canonical.hash)
                 then Ok None
                 else
                   (match
                      Core.Estimator.estimate_result_on estimator ept ast
                    with
                    | Error e -> Error (Core.Error.to_string e)
                    | Ok o ->
                      (match
                         Engine.Auditor.audit_one ~estimator ~ept ~storage
                           ~estimate:o.Core.Estimator.value ast
                       with
                       | Error msg -> Error msg
                       | Ok a -> Ok (Some a)))
             in
             match audit_line () with
             | Ok None -> incr skipped
             | Ok (Some a) ->
               qerrors := a.Engine.Auditor.qerror :: !qerrors;
               emit (Engine.Auditor.audited_json a)
             | Error msg ->
               incr failed;
               emit
                 (Obs.Json.Obj
                    [ ("query", Obs.Json.String line);
                      ("error", Obs.Json.String msg) ])
           end);
    let qs = Array.of_list (List.rev !qerrors) in
    emit
      (Obs.Json.Obj
         [ ("summary", Obs.Json.Bool true);
           ("rate", Obs.Json.Float rate);
           ("queries", Obs.Json.Int !seen);
           ("audited", Obs.Json.Int (Array.length qs));
           ("skipped", Obs.Json.Int !skipped);
           ("errors", Obs.Json.Int !failed);
           ("window", Engine.Auditor.window_json qs) ]);
    if !failed > 0 then
      Format.eprintf "xseed audit: %d quer%s failed (see the report)@."
        !failed
        (if !failed = 1 then "y" else "ies")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Offline shadow audit: estimate every (sampled) workload query \
             from the synopsis, evaluate it exactly against the source \
             document, and report per-query true q-error with per-step \
             error attribution as JSON-lines, then one summary line whose \
             window percentiles are rendered exactly as the serve \
             protocol's AUDIT verb renders its own")
    Term.(const run $ synopsis_arg $ audit_doc_pos_arg $ workload_pos_arg
          $ out_arg $ rate_arg $ seed_arg $ override_threshold_arg)

(* A line-protocol shell over the TCP transport: stdin lines become request
   frames (BATCH/PROFILE pull their payload lines into the same frame),
   response payloads print to stdout. What the tests and smokes drive. *)
let client_cmd =
  let client_port_arg =
    Arg.(required & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Port of a running 'xseed serve --port'")
  in
  let run host port =
    protect @@ fun () ->
    let c = ok_or_raise (Net.Client.connect ~host ~port ()) in
    Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
    Format.eprintf "xseed client: connected: %s@." (Net.Client.greeting c);
    let read_line () = try Some (input_line stdin) with End_of_file -> None in
    let rec loop () =
      match read_line () with
      | None -> ()
      | Some line when String.trim line = "" -> loop ()
      | Some line ->
        let payload =
          (* BATCH n / PROFILE n frame their n payload lines with the
             request — the frame is the unit of transport. *)
          let framed_count verb =
            let vl = String.length verb in
            let line = String.trim line in
            if
              String.length line > vl
              && String.sub line 0 vl = verb
              && line.[vl] = ' '
            then
              int_of_string_opt
                (String.trim (String.sub line vl (String.length line - vl)))
            else None
          in
          match (framed_count "BATCH", framed_count "PROFILE") with
          | Some n, _ | None, Some n when n >= 0 && n <= 1_000_000 ->
            let extra = List.filter_map (fun _ -> read_line ()) (List.init n Fun.id) in
            String.concat "\n" (line :: extra)
          | _ -> line
        in
        (match Net.Client.request c payload with
         | Ok response ->
           print_endline response;
           flush stdout
         | Error e -> raise (Core.Error.Xseed e));
        loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to 'xseed serve --port' and speak the line protocol \
             from stdin: each line (with BATCH/PROFILE payload lines \
             attached) is sent as one frame, each response payload printed \
             to stdout. Exits 74 when the connection drops mid-frame")
    Term.(const run $ host_arg $ client_port_arg)

(* Replay: drive a workload through estimate -> execute -> feedback rounds
   against an initially empty HET, reporting accuracy per round. This is the
   paper's query-feedback scenario (Figure 1) end to end: the synopsis
   starts as kernel-only and earns its HET from the workload itself. *)
let replay_cmd =
  let workload_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"Query file, one XPath expression per line ('#' comments)")
  in
  let rounds_arg =
    Arg.(value & opt int 3
         & info [ "rounds" ] ~docv:"R" ~doc:"Feedback rounds to run")
  in
  let assert_improving_arg =
    Arg.(value & flag
         & info [ "assert-improving" ]
             ~doc:"Exit 1 unless the per-round q-error median never \
                   increases")
  in
  let run file workload_file rounds budget threshold qerror_threshold
      cache_capacity assert_improving trace_out obs_spec =
    protect @@ fun () ->
    if rounds < 1 then
      Core.Error.raisef Core.Error.Malformed_query "--rounds must be >= 1";
    let obs = obs_of obs_spec in
    let trace, write_trace = trace_of trace_out in
    let doc = read_file file in
    let queries =
      read_file workload_file |> String.split_on_char '\n'
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if line = "" || line.[0] = '#' then None
             else
               match Xpath.Parser.parse_result line with
               | Ok q -> Some q
               | Result.Error { position; message } ->
                 raise
                   (Core.Error.Xseed
                      (Core.Error.make ~position Core.Error.Malformed_query
                         (Printf.sprintf "%s: %s" line message))))
    in
    if queries = [] then
      Core.Error.raisef Core.Error.Malformed_query "empty workload: %s"
        workload_file;
    let kernel = Core.Builder.of_string ?obs doc in
    let het = Core.Het.create () in
    Option.iter (fun bytes -> Core.Het.set_budget het ~bytes) budget;
    let estimator =
      Core.Estimator.create
        ~card_threshold:(Option.value threshold ~default:0.5)
        ~het ?obs kernel
    in
    let engine =
      Engine.create ~qerror_threshold ~cache_capacity ?obs ?trace estimator
    in
    let storage = Nok.Storage.of_string ~with_values:true doc in
    let actuals =
      List.map (fun q -> Nok.Eval.cardinality storage q) queries
    in
    let estimate_of q =
      match Engine.estimate_ast engine q with
      | Ok s -> s.Engine.outcome.Core.Estimator.value
      | Error e -> raise (Core.Error.Xseed e)
    in
    let medians = ref [] in
    for round = 1 to rounds do
      Obs.span ?obs "replay.round" (fun () ->
          let pairs =
            List.map2
              (fun q a -> (estimate_of q, float_of_int a))
              queries actuals
          in
          let s = Stats.Metrics.summarize pairs in
          medians := s.Stats.Metrics.q_error_median :: !medians;
          List.iter2
            (fun q actual ->
              match Engine.feedback_ast engine q ~actual with
              | Ok _ -> ()
              | Error e -> raise (Core.Error.Xseed e))
            queries actuals;
          let c = Engine.cache_counters engine in
          Format.printf
            "round %d  queries %d  q-error median %.3f p90 %.3f max %.3f  \
             cache %d hits / %d misses  HET %d active (%d B)  refinements %d@."
            round s.Stats.Metrics.count s.Stats.Metrics.q_error_median
            s.Stats.Metrics.q_error_p90 s.Stats.Metrics.q_error_max
            c.Engine.Lru_cache.hits c.Engine.Lru_cache.misses
            (Core.Het.active_count het)
            (Core.Het.size_in_bytes het)
            (Engine.feedback_rounds engine);
          match Engine.drift engine with
          | None -> ()
          | Some d ->
            Format.printf
              "         drift window  %d obs / %d estimates  hit-rate %.2f  \
               q-error p50 %.3f p90 %.3f max %.3f  alerts %d%s@."
              (Engine.Drift.window_count d)
              (Engine.Drift.window_estimates d)
              (Engine.Drift.hit_rate d) (Engine.Drift.median d)
              (Engine.Drift.p90 d)
              (Engine.Drift.max_qerror d)
              (Engine.Drift.alerts d)
              (if Engine.Drift.alerting d then "  [ALERTING]" else ""))
    done;
    Engine.publish_counters engine;
    write_trace ();
    finish_obs obs;
    let medians = List.rev !medians in
    let monotone =
      let rec check = function
        | a :: (b :: _ as rest) -> b <= a +. 1e-9 && check rest
        | _ -> true
      in
      check medians
    in
    if assert_improving && not monotone then begin
      Format.eprintf
        "xseed replay: q-error median increased across rounds: %s@."
        (String.concat " -> "
           (List.map (Printf.sprintf "%.3f") medians));
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a workload through estimate/execute/feedback rounds: the \
             HET starts empty and is populated purely from query feedback, \
             reporting q-error per round")
    Term.(const run $ file_arg $ workload_arg $ rounds_arg $ budget_arg
          $ override_threshold_arg $ qerror_threshold_arg $ cache_capacity_arg
          $ assert_improving_arg $ trace_out_arg $ obs_term)

(* Validate a trace file with the exporter's own linter — the check `make
   trace-smoke` (and CI) runs against every trace the serve path emits. *)
let trace_lint_cmd =
  let trace_file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"Trace file written by --trace-out (Chrome trace-event \
                   JSON)")
  in
  let run path =
    protect @@ fun () ->
    let contents = read_file path in
    let json =
      try Obs.Json.of_string contents
      with Invalid_argument msg ->
        Core.Error.raisef Core.Error.Malformed_query "%s: not valid JSON (%s)"
          path msg
    in
    match Obs.Trace.lint json with
    | [] ->
      Format.printf "%s: ok@." path
    | problems ->
      List.iter (fun p -> Format.eprintf "%s: %s@." path p) problems;
      exit 65
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:"Validate a --trace-out file: well-formed trace-event JSON, \
             per-track timestamps non-decreasing, B/E slices matched, flow \
             and async ids resolved. Exits 0 when clean, 65 when the trace \
             is structurally invalid, 66 when the file is missing")
    Term.(const run $ trace_file_arg)

(* Lint a feedback journal: decode every frame (checking CRCs), print the
   entries as JSON-lines, and classify the tail. Exit codes follow the
   sysexits contract: 0 for a clean journal OR a torn tail (expected crash
   residue the serving path recovers silently), 74 for mid-file corruption
   (a fully-present frame failing CRC or parse — data after it is lost),
   65 when the file is not a journal at all, 66 when it is missing. *)
let journal_dump_cmd =
  let journal_file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JOURNAL"
             ~doc:"Feedback journal written by 'xseed serve --journal'")
  in
  let run path =
    protect @@ fun () ->
    let scan = ok_or_raise (Engine.Journal.scan_file path) in
    List.iter
      (fun (e : Engine.Journal.entry) ->
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                [ ("query", Obs.Json.String e.Engine.Journal.query);
                  ("actual", Obs.Json.Int e.Engine.Journal.actual) ])))
      scan.Engine.Journal.entries;
    match scan.Engine.Journal.tail with
    | Engine.Journal.Clean ->
      Format.eprintf "%s: %d frames, %d bytes, clean tail@." path
        scan.Engine.Journal.frames scan.Engine.Journal.valid_bytes
    | Engine.Journal.Torn off ->
      Format.eprintf
        "%s: %d frames, torn tail at byte %d (crash residue; recoverable \
         by truncating to %d bytes)@."
        path scan.Engine.Journal.frames off scan.Engine.Journal.valid_bytes
    | Engine.Journal.Corrupt off ->
      Format.eprintf
        "%s: %d frames, corrupt frame at byte %d (CRC or parse failure); \
         frames after byte %d are lost@."
        path scan.Engine.Journal.frames off scan.Engine.Journal.valid_bytes;
      exit 74
  in
  Cmd.v
    (Cmd.info "journal-dump"
       ~doc:"Decode a feedback journal: print one JSON object per valid \
             frame to stdout and a tail summary to stderr. Exits 0 when the \
             journal is clean or carries only a torn tail (crash residue), \
             74 on mid-file corruption, 65 when the file is not a journal, \
             66 when it is missing")
    Term.(const run $ journal_file_arg)

let () =
  let doc = "XSEED: accurate and fast cardinality estimation for XPath queries" in
  let info = Cmd.info "xseed" ~version:Engine.Serve.version ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [ stats_cmd; build_cmd; estimate_cmd; explain_cmd; evaluate_cmd;
           ept_cmd; generate_cmd; workload_cmd; compare_cmd; serve_cmd;
           audit_cmd; client_cmd; replay_cmd; trace_lint_cmd;
           journal_dump_cmd ])
  in
  (* Remap cmdliner's reserved codes onto the sysexits contract documented
     in the README: 64 for a command-line usage error, 70 for anything the
     term-evaluation layer classified as internal. *)
  exit
    (if code = Cmd.Exit.cli_error then 64
     else if code = Cmd.Exit.internal_error then 70
     else code)
