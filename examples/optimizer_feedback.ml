(* Self-tuning optimizer loop (paper Figure 1, the feedback arrow).

   A cost-based optimizer estimates a query's cardinality, executes the
   query, observes the actual cardinality, and feeds it back into the HET.
   Starting from a bare kernel and an empty HET, this example replays an
   XMark workload for several rounds and reports the error after each:
   entries accumulate exactly where the kernel was wrong, so RMSE falls.

   Run with: dune exec examples/optimizer_feedback.exe *)

let () =
  let doc = Datagen.Xmark.generate ~seed:2024 ~items:80 () in
  let storage = Nok.Storage.of_string doc in
  let path_tree = Pathtree.Path_tree.of_string doc in
  Printf.printf "document: %d bytes, workload drawn from its path tree\n\n"
    (String.length doc);

  (* Bare kernel + empty HET: everything below comes from feedback alone. *)
  let kernel = Core.Builder.of_string doc in
  let het = Core.Het.create () in
  let estimator = Core.Estimator.create ~het kernel in

  let rng = Datagen.Rng.create ~seed:7 in
  let workload =
    Datagen.Workload.all_simple_paths path_tree
    @ Datagen.Workload.branching path_tree ~rng ~count:60 ()
  in
  Printf.printf "workload: %d queries (all SP + random BP)\n\n"
    (List.length workload);

  let evaluate () =
    Stats.Metrics.summarize
      (List.map
         (fun q ->
           let est = Core.Estimator.estimate estimator q in
           let actual = float_of_int (Nok.Eval.cardinality storage q) in
           (est, actual))
         workload)
  in

  Printf.printf "%-8s %10s %10s %14s\n" "round" "RMSE" "NRMSE" "HET entries";
  let report round =
    let s = evaluate () in
    Printf.printf "%-8d %10.3f %9.2f%% %14d\n" round s.rmse (100.0 *. s.nrmse)
      (Core.Het.active_count het)
  in
  report 0;
  (* Each round: run every query, feed the observed cardinality back. *)
  for round = 1 to 3 do
    List.iter
      (fun q ->
        let actual = Nok.Eval.cardinality storage q in
        ignore (Core.Estimator.record_feedback estimator q ~actual))
      workload;
    report round
  done;
  print_newline ();

  (* The HET honours a budget even when fed dynamically. *)
  Core.Het.set_budget het ~bytes:512;
  let s = evaluate () in
  Printf.printf
    "after capping the HET at 512 bytes: RMSE %.3f with %d active entries\n"
    s.rmse (Core.Het.active_count het)
