(** Treebank-analogue generator: the paper's "complex, highly recursive"
    corpus (parse trees of Penn-Treebank-style tags).

    A probabilistic grammar over S / NP / VP / PP / SBAR with recursive
    productions (clause coordination, NP post-modification, subordinate
    clauses) tuned so the document recursion level matches Table 2's
    Treebank row: average node recursion level around 1.3, maximum around
    8-10. Structure-rich by design — the number of distinct rooted paths
    grows quickly, which is what blows up TreeSketch construction and the
    unthresholded EPT. *)

val generate : ?seed:int -> ?max_recursion:int -> sentences:int -> unit -> string
(** [max_recursion] (default 9) caps how often one tag may repeat on a
    rooted path. *)
