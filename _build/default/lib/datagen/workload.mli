(** Workload generation following the paper's Section 6.1: for each data set,
    {e all} possible SP queries plus randomly generated BP and CP queries,
    with configurable maximum predicates per step (1BP/2BP/3BP and the CP
    counterparts).

    Queries are derived from the document's path tree, so they reference
    labels and paths that exist — like the paper's "non-trivial" random
    queries (a sample: [//regions/australia/item\[shipping\]/location]). *)

type kind = Sp | Bp | Cp

val all_simple_paths : Pathtree.Path_tree.t -> Xpath.Ast.t list
(** One SP query per distinct rooted path. *)

val branching :
  Pathtree.Path_tree.t -> rng:Rng.t -> count:int -> ?mbp:int -> unit -> Xpath.Ast.t list
(** Random branching-path queries: child axes and name tests only, each step
    carrying up to [mbp] (default 1) predicates drawn from the labels that
    actually occur below the step's path. *)

val complex :
  Pathtree.Path_tree.t -> rng:Rng.t -> count:int -> ?mbp:int -> unit -> Xpath.Ast.t list
(** Random complex-path queries: like {!branching} but steps may be elided
    (turning the next axis into [//]) and name tests may become wildcards. *)

val valued :
  Pathtree.Path_tree.t ->
  storage:Nok.Storage.t ->
  rng:Rng.t ->
  count:int ->
  unit ->
  Xpath.Ast.t list
(** Random queries carrying value predicates (the future-work extension):
    branching queries whose final step compares a child's text or one of its
    attributes against a value actually drawn from the document — equality
    on sampled strings, ranges around sampled numbers. Requires a storage
    built with [~with_values:true]. *)

val classify : Xpath.Ast.t -> kind
(** Consistency check against {!Xpath.Classify}. *)
