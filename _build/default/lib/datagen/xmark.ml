let regions =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let words =
  [| "gold"; "vintage"; "rare"; "signed"; "boxed"; "mint"; "classic";
     "antique"; "original"; "limited" |]

let text rng n =
  String.concat " " (List.init n (fun _ -> Rng.choose rng words))

let field buf tag body =
  Buffer.add_string buf ("<" ^ tag ^ ">");
  Buffer.add_string buf body;
  Buffer.add_string buf ("</" ^ tag ^ ">")

(* description -> text | parlist; parlist -> listitem+ -> text | parlist.
   [depth] counts parlist nesting: capped at 2, so a rooted path holds at
   most two parlist (and two listitem) labels - recursion level 1. *)
let rec parlist buf rng depth =
  Buffer.add_string buf "<parlist>";
  for _ = 1 to 1 + Rng.int rng 3 do
    Buffer.add_string buf "<listitem>";
    if depth < 2 && Rng.bool rng 0.3 then parlist buf rng (depth + 1)
    else field buf "text" (text rng (2 + Rng.int rng 6));
    Buffer.add_string buf "</listitem>"
  done;
  Buffer.add_string buf "</parlist>"

let description buf rng =
  Buffer.add_string buf "<description>";
  if Rng.bool rng 0.4 then parlist buf rng 1
  else field buf "text" (text rng (3 + Rng.int rng 8));
  Buffer.add_string buf "</description>"

let item buf rng id =
  Buffer.add_string buf (Printf.sprintf "<item id=\"item%d\">" id);
  field buf "location" "United States";
  field buf "quantity" (string_of_int (1 + Rng.int rng 5));
  field buf "name" (text rng 2);
  Buffer.add_string buf "<payment>Creditcard</payment>";
  description buf rng;
  if Rng.bool rng 0.6 then field buf "shipping" "Will ship internationally";
  for _ = 1 to 1 + Rng.int rng 2 do
    Buffer.add_string buf
      (Printf.sprintf "<incategory category=\"category%d\"/>" (Rng.int rng 50))
  done;
  if Rng.bool rng 0.3 then begin
    Buffer.add_string buf "<mailbox>";
    for _ = 1 to 1 + Rng.int rng 2 do
      Buffer.add_string buf "<mail>";
      field buf "from" (text rng 1);
      field buf "to" (text rng 1);
      field buf "date" "07/04/2000";
      field buf "text" (text rng 4);
      Buffer.add_string buf "</mail>"
    done;
    Buffer.add_string buf "</mailbox>"
  end;
  Buffer.add_string buf "</item>"

let person buf rng id =
  Buffer.add_string buf (Printf.sprintf "<person id=\"person%d\">" id);
  field buf "name" (text rng 2);
  field buf "emailaddress" "mailto:x@example.com";
  if Rng.bool rng 0.5 then field buf "phone" "+1 (555) 0100";
  if Rng.bool rng 0.4 then begin
    Buffer.add_string buf "<address>";
    field buf "street" "42 Main St";
    field buf "city" "Waterloo";
    field buf "country" "Canada";
    field buf "zipcode" "N2L3G1";
    Buffer.add_string buf "</address>"
  end;
  if Rng.bool rng 0.3 then field buf "homepage" "http://example.com/~p";
  if Rng.bool rng 0.35 then field buf "creditcard" "1234 5678 9012 3456";
  if Rng.bool rng 0.6 then begin
    Buffer.add_string buf "<profile income=\"55000\">";
    for _ = 1 to Rng.int rng 3 do
      Buffer.add_string buf
        (Printf.sprintf "<interest category=\"category%d\"/>" (Rng.int rng 50))
    done;
    if Rng.bool rng 0.5 then field buf "education" "Graduate School";
    if Rng.bool rng 0.7 then field buf "gender" (if Rng.bool rng 0.5 then "male" else "female");
    field buf "business" (if Rng.bool rng 0.5 then "Yes" else "No");
    if Rng.bool rng 0.6 then field buf "age" (string_of_int (18 + Rng.int rng 50));
    Buffer.add_string buf "</profile>"
  end;
  if Rng.bool rng 0.25 then begin
    Buffer.add_string buf "<watches>";
    for _ = 1 to 1 + Rng.int rng 3 do
      Buffer.add_string buf
        (Printf.sprintf "<watch open_auction=\"open_auction%d\"/>" (Rng.int rng 100))
    done;
    Buffer.add_string buf "</watches>"
  end;
  Buffer.add_string buf "</person>"

let open_auction buf rng id =
  Buffer.add_string buf (Printf.sprintf "<open_auction id=\"open_auction%d\">" id);
  field buf "initial" (Printf.sprintf "%d.%02d" (Rng.int rng 200) (Rng.int rng 100));
  if Rng.bool rng 0.4 then field buf "reserve" (string_of_int (50 + Rng.int rng 200));
  for _ = 1 to Rng.int rng 5 do
    Buffer.add_string buf "<bidder>";
    field buf "date" "07/04/2000";
    field buf "time" "12:00:00";
    Buffer.add_string buf
      (Printf.sprintf "<personref person=\"person%d\"/>" (Rng.int rng 100));
    field buf "increase" (string_of_int (1 + Rng.int rng 20));
    Buffer.add_string buf "</bidder>"
  done;
  field buf "current" (string_of_int (10 + Rng.int rng 500));
  if Rng.bool rng 0.3 then field buf "privacy" "Yes";
  Buffer.add_string buf (Printf.sprintf "<itemref item=\"item%d\"/>" (Rng.int rng 100));
  Buffer.add_string buf (Printf.sprintf "<seller person=\"person%d\"/>" (Rng.int rng 100));
  Buffer.add_string buf "<annotation>";
  field buf "author" (text rng 2);
  description buf rng;
  field buf "happiness" (string_of_int (1 + Rng.int rng 10));
  Buffer.add_string buf "</annotation>";
  field buf "quantity" "1";
  field buf "type" "Regular";
  Buffer.add_string buf "<interval>";
  field buf "start" "07/04/2000";
  field buf "end" "08/04/2000";
  Buffer.add_string buf "</interval>";
  Buffer.add_string buf "</open_auction>"

let closed_auction buf rng _id =
  Buffer.add_string buf "<closed_auction>";
  Buffer.add_string buf (Printf.sprintf "<seller person=\"person%d\"/>" (Rng.int rng 100));
  Buffer.add_string buf (Printf.sprintf "<buyer person=\"person%d\"/>" (Rng.int rng 100));
  Buffer.add_string buf (Printf.sprintf "<itemref item=\"item%d\"/>" (Rng.int rng 100));
  field buf "price" (string_of_int (10 + Rng.int rng 500));
  field buf "date" "09/04/2000";
  field buf "quantity" "1";
  field buf "type" (if Rng.bool rng 0.5 then "Regular" else "Featured");
  Buffer.add_string buf "<annotation>";
  field buf "author" (text rng 2);
  description buf rng;
  field buf "happiness" (string_of_int (1 + Rng.int rng 10));
  Buffer.add_string buf "</annotation>";
  Buffer.add_string buf "</closed_auction>"

let category buf rng id =
  Buffer.add_string buf (Printf.sprintf "<category id=\"category%d\">" id);
  field buf "name" (text rng 1);
  description buf rng;
  Buffer.add_string buf "</category>"

let generate ?(seed = 42) ~items () =
  if items < 1 then invalid_arg "Xmark.generate: items must be >= 1";
  let rng = Rng.create ~seed in
  let buf = Buffer.create (items * 1200) in
  Buffer.add_string buf "<site>";
  Buffer.add_string buf "<regions>";
  Array.iteri
    (fun r region ->
      Buffer.add_string buf ("<" ^ region ^ ">");
      (* Slightly uneven split across regions, like the real generator. *)
      let share = max 1 (items * (r + 1) * 2 / (7 * 6)) in
      for i = 1 to share do
        item buf rng ((r * items) + i)
      done;
      Buffer.add_string buf ("</" ^ region ^ ">"))
    regions;
  Buffer.add_string buf "</regions>";
  Buffer.add_string buf "<categories>";
  for i = 1 to max 1 (items / 4) do
    category buf rng i
  done;
  Buffer.add_string buf "</categories>";
  Buffer.add_string buf "<catgraph>";
  for _ = 1 to max 1 (items / 4) do
    Buffer.add_string buf
      (Printf.sprintf "<edge from=\"category%d\" to=\"category%d\"/>"
         (Rng.int rng 50) (Rng.int rng 50))
  done;
  Buffer.add_string buf "</catgraph>";
  Buffer.add_string buf "<people>";
  for i = 1 to max 1 (items * 5 / 2) do
    person buf rng i
  done;
  Buffer.add_string buf "</people>";
  Buffer.add_string buf "<open_auctions>";
  for i = 1 to max 1 (items * 6 / 5) do
    open_auction buf rng i
  done;
  Buffer.add_string buf "</open_auctions>";
  Buffer.add_string buf "<closed_auctions>";
  for i = 1 to max 1 (items * 4 / 5) do
    closed_auction buf rng i
  done;
  Buffer.add_string buf "</closed_auctions>";
  Buffer.add_string buf "</site>";
  Buffer.contents buf
