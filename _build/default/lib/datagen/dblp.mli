(** DBLP-analogue generator: the paper's "simple, non-recursive" corpus.

    A flat bibliography of [records] publication elements under a [dblp]
    root. Field presence follows the real corpus' skew, including the
    deliberate anti-correlation the paper trips over in Figure 5: [pages]
    appears in 80% of articles (above BSEL_THRESHOLD, so never captured by
    the HET) while [publisher] is common {e only when} [pages] is absent —
    the independence assumption then overestimates
    [/dblp/article\[pages\]/publisher] by a large factor. *)

val generate : ?seed:int -> records:int -> unit -> string

val pages_probability : float
(** 0.8 — the backward selectivity of [pages] under article (paper §6.3). *)

val publisher_given_pages : float
val publisher_given_no_pages : float
