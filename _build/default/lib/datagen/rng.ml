(* SplitMix64 (Steele, Lea, Flood 2014), the standard seedable splittable
   generator; 64-bit state, one multiply-shift-xor chain per draw. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create ~seed = { state = mix64 (Int64.of_int seed) }

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny versus 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 arr in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: weights must sum > 0";
  let target = float t *. total in
  let rec pick i acc =
    if i = Array.length arr - 1 then fst arr.(i)
    else
      let acc = acc +. snd arr.(i) in
      if target < acc then fst arr.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
