lib/datagen/workload.mli: Nok Pathtree Rng Xpath
