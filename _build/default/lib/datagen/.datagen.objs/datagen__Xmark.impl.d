lib/datagen/xmark.ml: Array Buffer List Printf Rng String
