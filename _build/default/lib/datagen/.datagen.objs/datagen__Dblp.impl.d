lib/datagen/dblp.ml: Buffer Printf Rng String
