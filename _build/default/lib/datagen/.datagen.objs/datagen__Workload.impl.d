lib/datagen/workload.ml: Array Hashtbl List Nok Option Pathtree Rng String Xml Xpath
