lib/datagen/treebank.mli:
