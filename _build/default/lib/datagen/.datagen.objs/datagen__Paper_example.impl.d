lib/datagen/paper_example.ml: Xml
