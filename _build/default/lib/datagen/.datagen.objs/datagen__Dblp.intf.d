lib/datagen/dblp.mli:
