lib/datagen/rng.ml: Array Int64
