lib/datagen/treebank.ml: Buffer Hashtbl Option Rng
