lib/datagen/paper_example.mli: Xml
