lib/datagen/xmark.mli:
