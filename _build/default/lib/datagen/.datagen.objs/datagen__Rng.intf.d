lib/datagen/rng.mli:
