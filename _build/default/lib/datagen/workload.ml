type kind = Sp | Bp | Cp

let step axis name predicates =
  { Xpath.Ast.axis; test = Xpath.Ast.Name name; predicates; value_predicates = [] }

let all_simple_paths (pt : Pathtree.Path_tree.t) =
  List.map
    (fun (labels, _card) ->
      List.map
        (fun l -> step Xpath.Ast.Child (Xml.Label.name pt.table l) [])
        labels)
    (Pathtree.Path_tree.all_simple_paths pt)

(* Pick a random rooted path of length >= 2 by random descent; nodes with
   deeper subtrees are favoured by re-rolling shallow results. *)
let random_path (pt : Pathtree.Path_tree.t) rng =
  let rec descend (node : Pathtree.Path_tree.node) acc =
    let acc = node :: acc in
    match node.children with
    | [] -> List.rev acc
    | kids ->
      if List.length acc > 1 && Rng.bool rng 0.25 then List.rev acc
      else descend (Rng.choose rng (Array.of_list kids)) acc
  in
  let rec retry n =
    let path = descend pt.root [] in
    if List.length path >= 2 || n > 5 then path else retry (n + 1)
  in
  retry 0

(* Attach up to [mbp] predicates to a step: single labels drawn from the
   children of the step's path-tree node (excluding the spine continuation
   when possible, like the paper's sample queries). *)
let add_predicates rng ~mbp ~p_predicate (pt : Pathtree.Path_tree.t)
    (node : Pathtree.Path_tree.node) ~(next : Pathtree.Path_tree.node option) =
  let candidates =
    List.filter
      (fun (k : Pathtree.Path_tree.node) ->
        match next with None -> true | Some n -> k.label <> n.label)
      node.children
  in
  if candidates = [] then []
  else begin
    let n_preds =
      let rec roll acc i = if i >= mbp || not (Rng.bool rng p_predicate) then acc else roll (acc + 1) (i + 1) in
      roll 0 0
    in
    let arr = Array.of_list candidates in
    Rng.shuffle rng arr;
    List.init
      (min n_preds (Array.length arr))
      (fun i -> [ step Xpath.Ast.Child (Xml.Label.name pt.table arr.(i).label) [] ])
  end

let branching_query (pt : Pathtree.Path_tree.t) rng ~mbp =
  let nodes = random_path pt rng in
  let rec build = function
    | [] -> []
    | (node : Pathtree.Path_tree.node) :: rest ->
      let next = match rest with n :: _ -> Some n | [] -> None in
      let preds = add_predicates rng ~mbp ~p_predicate:0.4 pt node ~next in
      step Xpath.Ast.Child (Xml.Label.name pt.table node.label) preds :: build rest
  in
  build nodes

let complex_query (pt : Pathtree.Path_tree.t) rng ~mbp =
  let nodes = random_path pt rng in
  let total = List.length nodes in
  let rec build i descendant_pending = function
    | [] -> []
    | (node : Pathtree.Path_tree.node) :: rest ->
      (* Elide intermediate steps with some probability; the survivor after
         an elision is reached through a descendant axis. *)
      if i > 0 && i < total - 1 && Rng.bool rng 0.3 then build (i + 1) true rest
      else begin
        let next = match rest with n :: _ -> Some n | [] -> None in
        let preds = add_predicates rng ~mbp ~p_predicate:0.3 pt node ~next in
        let axis =
          if descendant_pending || (i = 0 && Rng.bool rng 0.4) then
            Xpath.Ast.Descendant
          else Xpath.Ast.Child
        in
        let test =
          if Rng.bool rng 0.1 then Xpath.Ast.Wildcard
          else Xpath.Ast.Name (Xml.Label.name pt.table node.label)
        in
        { Xpath.Ast.axis; test; predicates = preds; value_predicates = [] }
        :: build (i + 1) false rest
      end
  in
  match build 0 false nodes with
  | [] -> [ step Xpath.Ast.Descendant (Xml.Label.name pt.table pt.root.label) [] ]
  | q -> q

let generate_many ~count make =
  (* Dedup while preserving generation order. *)
  let seen = Hashtbl.create (2 * count) in
  let rec go acc n attempts =
    if n >= count || attempts > 50 * count then List.rev acc
    else begin
      let q = make () in
      let key = Xpath.Ast.to_string q in
      if Hashtbl.mem seen key then go acc n (attempts + 1)
      else begin
        Hashtbl.add seen key ();
        go (q :: acc) (n + 1) (attempts + 1)
      end
    end
  in
  go [] 0 0

let branching pt ~rng ~count ?(mbp = 1) () =
  generate_many ~count (fun () -> branching_query pt rng ~mbp)

let complex pt ~rng ~count ?(mbp = 1) () =
  generate_many ~count (fun () -> complex_query pt rng ~mbp)

(* Sample concrete (child text / attribute) values per context label by
   scanning a bounded prefix of the storage. *)
let collect_value_samples (st : Nok.Storage.t) =
  let child_samples = Hashtbl.create 64 in
  let attr_samples = Hashtbl.create 64 in
  let budget = min (Nok.Storage.node_count st) 50_000 in
  for i = 0 to budget - 1 do
    let context = st.labels.(i) in
    List.iter
      (fun j ->
        let text = String.trim (Nok.Storage.node_text st j) in
        if text <> "" && String.length text < 40 then begin
          let key = (context, st.labels.(j)) in
          let existing = Option.value (Hashtbl.find_opt child_samples key) ~default:[] in
          if List.length existing < 8 then
            Hashtbl.replace child_samples key (text :: existing)
        end)
      (Nok.Storage.children st i);
    List.iter
      (fun (name, v) ->
        if String.length v < 40 then begin
          let key = (context, name) in
          let existing = Option.value (Hashtbl.find_opt attr_samples key) ~default:[] in
          if List.length existing < 8 then
            Hashtbl.replace attr_samples key (v :: existing)
        end)
      (if Array.length st.attributes = 0 then [] else st.attributes.(i))
  done;
  (child_samples, attr_samples)

let valued (pt : Pathtree.Path_tree.t) ~storage ~rng ~count () =
  if not (Nok.Storage.has_values storage) then
    invalid_arg "Workload.valued: storage built without ~with_values:true";
  let child_samples, attr_samples = collect_value_samples storage in
  let make_pred context =
    (* Candidate targets under this label. *)
    let child_keys =
      Hashtbl.fold
        (fun (ctx, child) vs acc -> if ctx = context then (child, vs) :: acc else acc)
        child_samples []
    in
    let attr_keys =
      Hashtbl.fold
        (fun (ctx, name) vs acc -> if ctx = context then (name, vs) :: acc else acc)
        attr_samples []
    in
    let pick_literal vs =
      let v = Rng.choose rng (Array.of_list vs) in
      match float_of_string_opt v with
      | Some x when Rng.bool rng 0.6 ->
        let cmp =
          Rng.choose rng [| Xpath.Ast.Lt; Xpath.Ast.Le; Xpath.Ast.Gt; Xpath.Ast.Ge |]
        in
        Some (cmp, Xpath.Ast.Number x)
      | _ ->
        if String.contains v '\'' then None
        else Some ((if Rng.bool rng 0.8 then Xpath.Ast.Eq else Xpath.Ast.Ne),
                   Xpath.Ast.Text v)
    in
    let use_attr = attr_keys <> [] && (child_keys = [] || Rng.bool rng 0.4) in
    if use_attr then
      let name, vs = Rng.choose rng (Array.of_list attr_keys) in
      Option.map
        (fun (cmp, literal) ->
          { Xpath.Ast.target = Xpath.Ast.Attribute name; cmp; literal })
        (pick_literal vs)
    else
      match child_keys with
      | [] -> None
      | _ ->
        let child, vs = Rng.choose rng (Array.of_list child_keys) in
        Option.map
          (fun (cmp, literal) ->
            { Xpath.Ast.target = Xpath.Ast.Child_text (Xml.Label.name pt.table child);
              cmp; literal })
          (pick_literal vs)
  in
  generate_many ~count (fun () ->
      let q = branching_query pt rng ~mbp:1 in
      (* Attach a value predicate to the deepest step whose label has value
         statistics (leaf steps often have text-only children of their
         own, so walk upward until a target exists). *)
      let arr = Array.of_list q in
      let rec attach i =
        if i < 0 then ()
        else begin
          let step = arr.(i) in
          let context =
            match step.Xpath.Ast.test with
            | Xpath.Ast.Name n ->
              Option.value (Xml.Label.find_opt pt.table n) ~default:(-1)
            | Xpath.Ast.Wildcard -> -1
          in
          match if context >= 0 then make_pred context else None with
          | Some vp -> arr.(i) <- { step with value_predicates = [ vp ] }
          | None -> attach (i - 1)
        end
      in
      attach (Array.length arr - 1);
      Array.to_list arr)

let classify q =
  match Xpath.Classify.shape q with
  | Xpath.Classify.Simple -> Sp
  | Xpath.Classify.Branching -> Bp
  | Xpath.Classify.Complex -> Cp
