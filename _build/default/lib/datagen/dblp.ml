let pages_probability = 0.8
let publisher_given_pages = 0.05
let publisher_given_no_pages = 0.9

let words =
  [| "query"; "optimization"; "xml"; "database"; "index"; "stream"; "cache";
     "join"; "graph"; "tree"; "pattern"; "estimation"; "synopsis"; "storage" |]

let names =
  [| "Alice Meyer"; "Bob Chen"; "Carla Diaz"; "Deepak Rao"; "Eve Martin";
     "Fela Okafor"; "Grete Hansen"; "Hiro Tanaka"; "Ines Silva"; "Jan Novak" |]

let journals =
  [| "VLDB Journal"; "TODS"; "SIGMOD Record"; "Information Systems";
     "TKDE"; "JACM" |]

let venues =
  [| "VLDB"; "SIGMOD"; "ICDE"; "EDBT"; "CIKM"; "WWW" |]

let add_field buf tag text =
  Buffer.add_string buf "<";
  Buffer.add_string buf tag;
  Buffer.add_string buf ">";
  Buffer.add_string buf text;
  Buffer.add_string buf "</";
  Buffer.add_string buf tag;
  Buffer.add_string buf ">"

let title rng =
  Printf.sprintf "%s %s %s"
    (String.capitalize_ascii (Rng.choose rng words))
    (Rng.choose rng words) (Rng.choose rng words)

let record buf rng =
  let kind =
    Rng.choose_weighted rng
      [| ("article", 0.55); ("inproceedings", 0.33); ("book", 0.06);
         ("phdthesis", 0.06) |]
  in
  Buffer.add_string buf ("<" ^ kind ^ " mdate=\"2004-0" ^ string_of_int (1 + Rng.int rng 9) ^ "-01\">");
  for _ = 1 to 1 + Rng.int rng 3 do
    add_field buf "author" (Rng.choose rng names)
  done;
  add_field buf "title" (title rng);
  add_field buf "year" (string_of_int (1985 + Rng.int rng 20));
  (match kind with
   | "article" ->
     add_field buf "journal" (Rng.choose rng journals);
     if Rng.bool rng 0.7 then add_field buf "volume" (string_of_int (1 + Rng.int rng 40));
     if Rng.bool rng 0.6 then add_field buf "number" (string_of_int (1 + Rng.int rng 12));
     let has_pages = Rng.bool rng pages_probability in
     if has_pages then
       add_field buf "pages"
         (let a = 1 + Rng.int rng 400 in
          Printf.sprintf "%d-%d" a (a + 8 + Rng.int rng 20));
     let p_publisher =
       if has_pages then publisher_given_pages else publisher_given_no_pages
     in
     if Rng.bool rng p_publisher then add_field buf "publisher" "ACM Press";
     (* Common sibling pair correlated above BSEL_THRESHOLD (paper Fig. 5:
        such correlations are exactly what a 0.1-threshold HET misses). *)
     let has_month = Rng.bool rng 0.5 in
     if has_month then add_field buf "month" "June";
     if Rng.bool rng (if has_month then 0.9 else 0.05) then
       add_field buf "day" (string_of_int (1 + Rng.int rng 28));
     (* Rare correlated fields: below BSEL_THRESHOLD, so they do become HET
        branching candidates — the 2BP entries of Figure 6. *)
     let has_errata = Rng.bool rng 0.04 in
     if has_errata then add_field buf "errata" "see errata";
     if Rng.bool rng (if has_errata then 0.5 else 0.02) then
       add_field buf "award" "best paper"
   | "inproceedings" ->
     add_field buf "booktitle" (Rng.choose rng venues);
     if Rng.bool rng 0.85 then
       add_field buf "pages"
         (let a = 1 + Rng.int rng 400 in
          Printf.sprintf "%d-%d" a (a + 8 + Rng.int rng 20));
     if Rng.bool rng 0.4 then add_field buf "crossref" "conf/xyz/2004"
   | "book" ->
     add_field buf "publisher" (if Rng.bool rng 0.5 then "Springer" else "Morgan Kaufmann");
     add_field buf "isbn" (string_of_int (1000000 + Rng.int rng 8999999))
   | _ ->
     add_field buf "school" "University of Waterloo");
  if Rng.bool rng 0.75 then add_field buf "ee" "http://doi.example/x";
  if Rng.bool rng 0.5 then add_field buf "url" "db/journals/x.html";
  (* Citations carry nested structure whose distribution depends on the
     record type: journal-article citations are mostly labeled, conference
     ones mostly annotated. The kernel's label-split graph merges all cite
     nodes, so depth-3 simple paths like /dblp/article/cite/label are
     mis-split proportionally (the paper's Example 4 ancestor-independence
     error) — exactly what HET simple-path entries repair. *)
  let p_label, p_note =
    match kind with
    | "article" -> (0.85, 0.08)
    | "inproceedings" -> (0.05, 0.6)
    | _ -> (0.3, 0.3)
  in
  for _ = 1 to Rng.int rng 4 do
    Buffer.add_string buf "<cite>";
    Buffer.add_string buf ("key" ^ string_of_int (Rng.int rng 10000));
    if Rng.bool rng p_label then add_field buf "label" (Rng.choose rng words);
    if Rng.bool rng p_note then add_field buf "note" (title rng);
    Buffer.add_string buf "</cite>"
  done;
  Buffer.add_string buf ("</" ^ kind ^ ">")

let generate ?(seed = 42) ~records () =
  let rng = Rng.create ~seed in
  let buf = Buffer.create (records * 300) in
  Buffer.add_string buf "<dblp>";
  for _ = 1 to records do
    record buf rng
  done;
  Buffer.add_string buf "</dblp>";
  Buffer.contents buf
