let nouns = [| "market"; "share"; "company"; "price"; "trader"; "index" |]
let verbs = [| "said"; "rose"; "fell"; "expects"; "reported"; "gained" |]
let dets = [| "the"; "a"; "this"; "its" |]
let preps = [| "of"; "in"; "on"; "with"; "by" |]
let adjs = [| "new"; "big"; "late"; "early"; "strong" |]

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  occ : (string, int) Hashtbl.t;  (* per-tag occurrences on the open path *)
  max_recursion : int;
  mutable depth : int;
}

let occurrences ctx tag = Option.value (Hashtbl.find_opt ctx.occ tag) ~default:0

let enter ctx tag =
  Hashtbl.replace ctx.occ tag (occurrences ctx tag + 1);
  ctx.depth <- ctx.depth + 1;
  Buffer.add_string ctx.buf ("<" ^ tag ^ ">")

let leave ctx tag =
  Hashtbl.replace ctx.occ tag (occurrences ctx tag - 1);
  ctx.depth <- ctx.depth - 1;
  Buffer.add_string ctx.buf ("</" ^ tag ^ ">")

let leaf ctx tag words =
  enter ctx tag;
  Buffer.add_string ctx.buf (Rng.choose ctx.rng words);
  leave ctx tag

(* A recursive production is allowed while the tag's occurrence count stays
   under the cap and gets geometrically less likely with depth, which yields
   a long-tailed recursion-level distribution like real Treebank. *)
let may_recurse ctx tag p =
  occurrences ctx tag < ctx.max_recursion
  && ctx.depth < 40
  && Rng.bool ctx.rng (p /. (1.0 +. (0.06 *. float_of_int ctx.depth)))

let rec s ctx =
  enter ctx "S";
  if may_recurse ctx "S" 0.18 then begin
    (* Coordinated clauses: S -> S CC S. *)
    s ctx;
    leaf ctx "CC" [| "and"; "but"; "or" |];
    s ctx
  end
  else begin
    np ctx;
    vp ctx;
    if Rng.bool ctx.rng 0.3 then pp ctx
  end;
  leave ctx "S"

and np ctx =
  enter ctx "NP";
  if may_recurse ctx "NP" 0.26 then begin
    (* Post-modified noun phrase: NP -> NP PP | NP SBAR. *)
    np ctx;
    if Rng.bool ctx.rng 0.7 then pp ctx else sbar ctx
  end
  else begin
    match Rng.int ctx.rng 3 with
    | 0 -> leaf ctx "PRP" [| "it"; "they"; "he" |]
    | 1 ->
      leaf ctx "DT" dets;
      leaf ctx "NN" nouns
    | _ ->
      leaf ctx "DT" dets;
      leaf ctx "JJ" adjs;
      leaf ctx "NN" nouns
  end;
  leave ctx "NP"

and vp ctx =
  enter ctx "VP";
  leaf ctx "VB" verbs;
  (if may_recurse ctx "VP" 0.22 then
     if Rng.bool ctx.rng 0.5 then sbar ctx else vp ctx
   else if Rng.bool ctx.rng 0.7 then np ctx);
  if Rng.bool ctx.rng 0.2 then pp ctx;
  leave ctx "VP"

and pp ctx =
  enter ctx "PP";
  leaf ctx "IN" preps;
  np ctx;
  leave ctx "PP"

and sbar ctx =
  enter ctx "SBAR";
  leaf ctx "IN" [| "that"; "because"; "while" |];
  if occurrences ctx "S" < ctx.max_recursion && ctx.depth < 40 then s ctx
  else np ctx;
  leave ctx "SBAR"

let generate ?(seed = 42) ?(max_recursion = 9) ~sentences () =
  if sentences < 1 then invalid_arg "Treebank.generate: sentences must be >= 1";
  let ctx =
    { rng = Rng.create ~seed; buf = Buffer.create (sentences * 400);
      occ = Hashtbl.create 16; max_recursion; depth = 0 }
  in
  Buffer.add_string ctx.buf "<FILE>";
  for _ = 1 to sentences do
    enter ctx "EMPTY";
    s ctx;
    leave ctx "EMPTY"
  done;
  Buffer.add_string ctx.buf "</FILE>";
  Buffer.contents ctx.buf
