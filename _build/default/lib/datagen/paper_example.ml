(* The instance below reproduces every edge label of the paper's Figure 2(b)
   kernel:
     (a,t)=(1:1) (a,u)=(1:1) (a,c)=(1:2)
     (c,t)=(2:2) (c,p)=(2:3) (c,s)=(2:5)
     (s,t)=(2:2, 1:1)  (s,p)=(5:9, 1:2, 2:3)  (s,s)=(0:0, 2:2, 1:2)
   i.e. five recursion-level-0 s nodes of which two have one s child each,
   one level-1 s with two s children, etc. *)
let document =
  "<a>\
   <t/><u/>\
   <c>\
   <t/><p/>\
   <s><t/><p/><p/></s>\
   <s><p/><p/><s><s><p/><p/></s><s><p/></s></s></s>\
   <s><t/><p/><p/></s>\
   </c>\
   <c>\
   <t/><p/><p/>\
   <s><p/><p/><s><t/><p/><p/></s></s>\
   <s><p/></s>\
   </c>\
   </a>"

let tree () = Xml.Tree.of_string document

let example3_query = "/a/c/s/s/t"
