(** Deterministic splittable RNG (SplitMix64).

    Every generator in this library takes an explicit [Rng.t] so corpora and
    workloads are reproducible bit-for-bit from a seed; nothing touches the
    global [Random] state. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream; advancing one does not affect the other. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** Element drawn with probability proportional to its weight.
    Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
