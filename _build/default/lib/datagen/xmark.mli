(** XMark-analogue generator (Schmidt et al., the XML Benchmark Project):
    the paper's "complex, small-recursion" corpus.

    Reproduces the auction-site schema shape: six regional item lists,
    categories, people with optional profiles, open and closed auctions —
    and the one recursive construct, [description/parlist/listitem/parlist],
    capped at one repeated level so the document recursion level matches the
    paper's Table 2 (avg ~0.04, max 1).

    [items] scales everything proportionally, like XMark's scale factor:
    people = 2.5x items, open auctions = 1.2x, closed auctions = 0.8x. *)

val generate : ?seed:int -> items:int -> unit -> string
