(** The running example of the paper (Figure 2).

    [document] is an XML instance whose XSEED kernel is exactly the kernel of
    Figure 2(b); Example 2's edge labels and Example 3's estimation table are
    checked against it in the test suite, and the quickstart example walks
    through it. *)

val document : string
(** The XML text of the Figure 2(a) tree (structure only). *)

val tree : unit -> Xml.Tree.t

val example3_query : string
(** ["/a/c/s/s/t"] — the query estimated in Example 3. *)
