(** Error metrics from the paper's Section 6.3.

    Given (estimate, actual) pairs over a workload:
    - RMSE: sqrt(mean of squared errors) — average error per query;
    - NRMSE: RMSE divided by the mean actual result size — error per unit of
      accurate result (adopted from Zhang et al., VLDB 2005);
    - R² (coefficient of determination) and OPD (order-preserving degree) —
      computed but mostly reported as sanity values, as in the paper. *)

type summary = {
  count : int;
  rmse : float;
  nrmse : float;  (** RMSE / mean actual; infinite when all actuals are 0 *)
  r_squared : float;
  opd : float;
      (** fraction of strictly-ordered actual pairs whose estimates preserve
          the order (ties in estimates count as preserved halfway) *)
  mean_actual : float;
  max_abs_error : float;
}

val summarize : (float * float) list -> summary
(** [(estimate, actual)] pairs. @raise Invalid_argument on an empty list. *)

val rmse : (float * float) list -> float
val nrmse : (float * float) list -> float

val pp : Format.formatter -> summary -> unit
val pp_row : Format.formatter -> summary -> unit
(** Compact "RMSE x / NRMSE y%" rendering used by the bench tables. *)
