lib/stats/metrics.mli: Format
