lib/stats/metrics.ml: Array Float Format List
