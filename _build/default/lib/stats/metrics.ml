type summary = {
  count : int;
  rmse : float;
  nrmse : float;
  r_squared : float;
  opd : float;
  mean_actual : float;
  max_abs_error : float;
}

let summarize pairs =
  let n = List.length pairs in
  if n = 0 then invalid_arg "Metrics.summarize: empty workload";
  let nf = float_of_int n in
  let sum_sq_err = ref 0.0 and sum_actual = ref 0.0 and max_err = ref 0.0 in
  List.iter
    (fun (e, a) ->
      let d = e -. a in
      sum_sq_err := !sum_sq_err +. (d *. d);
      sum_actual := !sum_actual +. a;
      if Float.abs d > !max_err then max_err := Float.abs d)
    pairs;
  let mean_actual = !sum_actual /. nf in
  let rmse = sqrt (!sum_sq_err /. nf) in
  let nrmse = if mean_actual = 0.0 then Float.infinity else rmse /. mean_actual in
  let ss_tot =
    List.fold_left
      (fun acc (_, a) -> acc +. ((a -. mean_actual) *. (a -. mean_actual)))
      0.0 pairs
  in
  let r_squared =
    if ss_tot = 0.0 then if !sum_sq_err = 0.0 then 1.0 else 0.0
    else 1.0 -. (!sum_sq_err /. ss_tot)
  in
  (* OPD over all strictly-ordered actual pairs. Quadratic; workloads are at
     most a few thousand queries. *)
  let arr = Array.of_list pairs in
  let ordered = ref 0 and preserved = ref 0.0 in
  Array.iteri
    (fun i (ei, ai) ->
      for j = i + 1 to Array.length arr - 1 do
        let ej, aj = arr.(j) in
        if ai < aj then begin
          incr ordered;
          if ei < ej then preserved := !preserved +. 1.0
          else if ei = ej then preserved := !preserved +. 0.5
        end
        else if aj < ai then begin
          incr ordered;
          if ej < ei then preserved := !preserved +. 1.0
          else if ej = ei then preserved := !preserved +. 0.5
        end
      done)
    arr;
  let opd = if !ordered = 0 then 1.0 else !preserved /. float_of_int !ordered in
  { count = n; rmse; nrmse; r_squared; opd; mean_actual; max_abs_error = !max_err }

let rmse pairs = (summarize pairs).rmse
let nrmse pairs = (summarize pairs).nrmse

let pp ppf s =
  Format.fprintf ppf
    "n=%d RMSE=%.4g NRMSE=%.2f%% R2=%.4f OPD=%.4f mean|a|=%.4g maxerr=%.4g"
    s.count s.rmse (100.0 *. s.nrmse) s.r_squared s.opd s.mean_actual
    s.max_abs_error

let pp_row ppf s =
  Format.fprintf ppf "%10.2f %9.2f%%" s.rmse (100.0 *. s.nrmse)
