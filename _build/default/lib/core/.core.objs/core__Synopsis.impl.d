lib/core/synopsis.ml: Buffer Builder Estimator Format Het Het_builder Kernel List Nok Pathtree String Value_synopsis Xml
