lib/core/estimator.mli: Het Kernel Matcher Value_synopsis Xpath
