lib/core/kernel.mli: Format Xml
