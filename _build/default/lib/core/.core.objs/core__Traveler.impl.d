lib/core/traveler.ml: Array Buffer Counter_stacks Float Het Kernel Path_hash Printf Xml
