lib/core/builder.mli: Kernel Xml
