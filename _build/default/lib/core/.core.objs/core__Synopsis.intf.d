lib/core/synopsis.mli: Estimator Format Het Kernel Value_synopsis
