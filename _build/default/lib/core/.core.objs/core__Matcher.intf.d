lib/core/matcher.mli: Het Traveler Value_synopsis Xml Xpath
