lib/core/traveler.mli: Het Kernel Xml
