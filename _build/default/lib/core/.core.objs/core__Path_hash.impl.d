lib/core/path_hash.ml: Int List
