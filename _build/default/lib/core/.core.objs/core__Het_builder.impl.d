lib/core/het_builder.ml: Float Format Hashtbl Het Kernel List Matcher Nok Path_hash Pathtree Traveler Xml Xpath
