lib/core/builder.ml: Counter_stacks Kernel List Xml
