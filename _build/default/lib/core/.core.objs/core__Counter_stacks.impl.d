lib/core/counter_stacks.ml: Array
