lib/core/het.mli: Format
