lib/core/estimator.ml: Float Het Kernel List Matcher Option Path_hash Traveler Value_synopsis Xml Xpath
