lib/core/het.ml: Buffer Float Format Hashtbl Int List Option Printf String
