lib/core/path_hash.mli: Xml
