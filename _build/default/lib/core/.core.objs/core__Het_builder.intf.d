lib/core/het_builder.mli: Format Het Kernel Nok Pathtree
