lib/core/counter_stacks.mli:
