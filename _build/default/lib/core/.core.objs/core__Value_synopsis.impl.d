lib/core/value_synopsis.ml: Array Buffer Char Float Hashtbl Int List Nok Option Printf String Xml Xpath
