lib/core/value_synopsis.mli: Nok Xml Xpath
