lib/core/matcher.ml: Array Het List Path_hash Traveler Value_synopsis Xml Xpath
