lib/core/kernel.ml: Array Buffer Format Hashtbl Int List Printf String Xml
