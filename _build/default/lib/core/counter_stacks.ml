(* The k-th simultaneous occurrence of an item lives on internal stack k
   (1-based). We keep the real stacks — pops are validated against them — and
   a per-item occurrence table; the recursion level is the index of the
   deepest non-empty stack minus one. Stack sizes are monotone
   (size(k) >= size(k+1)), so the deepest non-empty stack only moves by one
   on push/pop and all operations are O(1) outside table growth. *)

type stack = { mutable items : int array; mutable size : int }

type t = {
  mutable occ : int array;  (* occurrences per item id *)
  mutable stacks : stack array;  (* stacks.(k-1) holds k-th occurrences *)
  mutable nonempty : int;  (* number of non-empty stacks *)
  mutable total : int;
}

let create () =
  { occ = Array.make 64 0; stacks = [||]; nonempty = 0; total = 0 }

let ensure_occ t item =
  if item >= Array.length t.occ then begin
    let n = ref (Array.length t.occ) in
    while item >= !n do n := 2 * !n done;
    let bigger = Array.make !n 0 in
    Array.blit t.occ 0 bigger 0 (Array.length t.occ);
    t.occ <- bigger
  end

let ensure_stack t k =
  if k > Array.length t.stacks then begin
    let bigger =
      Array.init (max k (2 * Array.length t.stacks)) (fun i ->
          if i < Array.length t.stacks then t.stacks.(i)
          else { items = Array.make 8 0; size = 0 })
    in
    t.stacks <- bigger
  end

let stack_push s item =
  if s.size >= Array.length s.items then begin
    let bigger = Array.make (2 * Array.length s.items) 0 in
    Array.blit s.items 0 bigger 0 s.size;
    s.items <- bigger
  end;
  s.items.(s.size) <- item;
  s.size <- s.size + 1

let push t item =
  if item < 0 then invalid_arg "Counter_stacks.push: negative item";
  ensure_occ t item;
  let k = t.occ.(item) + 1 in
  t.occ.(item) <- k;
  ensure_stack t k;
  stack_push t.stacks.(k - 1) item;
  if k > t.nonempty then t.nonempty <- k;
  t.total <- t.total + 1;
  t.nonempty - 1

let pop t item =
  if item < 0 || item >= Array.length t.occ || t.occ.(item) = 0 then
    invalid_arg "Counter_stacks.pop: item not on the path";
  let k = t.occ.(item) in
  let s = t.stacks.(k - 1) in
  if s.size = 0 || s.items.(s.size - 1) <> item then
    invalid_arg "Counter_stacks.pop: item is not the top of its stack";
  s.size <- s.size - 1;
  t.occ.(item) <- k - 1;
  if k = t.nonempty && s.size = 0 then t.nonempty <- t.nonempty - 1;
  t.total <- t.total - 1

let recursion_level t = t.nonempty - 1

let depth t = t.total

let occurrences t item =
  if item < 0 || item >= Array.length t.occ then 0 else t.occ.(item)

let stack_count t = t.nonempty
