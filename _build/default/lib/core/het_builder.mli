(** HET pre-computation (paper Section 5).

    Walks the path tree comparing kernel estimates with actual cardinalities
    to produce simple-path entries (ranked by absolute error), then — for
    path-tree nodes whose backward selectivity is below [bsel_threshold] —
    enumerates leaf-level branching patterns [p\[q1\]..\[qk\]/r] with up to
    [mbp] predicates, evaluates their actual correlated backward
    selectivities with the NoK operator, and ranks them by the error of the
    kernel-only estimate.

    The returned table contains {e all} entries (the paper's on-disk list);
    apply {!Het.set_budget} to choose the in-memory top-k. *)

type stats = {
  simple_entries : int;
  zero_entries : int;  (** EPT paths that do not exist in the document *)
  branching_entries : int;
  branching_candidates : int;  (** label patterns enumerated *)
  nok_evaluations : int;  (** actual-cardinality queries run *)
}

val build :
  ?mbp:int ->
  ?bsel_threshold:float ->
  ?card_threshold:float ->
  ?max_branching_candidates:int ->
  ?zero_entries:bool ->
  kernel:Kernel.t ->
  path_tree:Pathtree.Path_tree.t ->
  ?storage:Nok.Storage.t ->
  unit ->
  Het.t * stats
(** Defaults: [mbp = 1] (the paper's sweet spot, Figure 6),
    [bsel_threshold = 0.1] (0.001 for Treebank in the paper),
    [card_threshold] as {!Estimator.create}. Branching entries require
    [storage]; without it only simple-path entries are built ([mbp] is
    ignored). [max_branching_candidates] (default 50_000) caps enumeration
    on pathological schemas; hitting it is reported in [stats]. *)

val pp_stats : Format.formatter -> stats -> unit
