(** Counter stacks (paper Figure 3): expected O(1) recursion-level tracking
    for the rooted path during parsing and synopsis traversal.

    Items (label ids) are pushed as the path descends and popped as it
    returns. Internally the k-th simultaneous occurrence of an item lives on
    stack k; the path recursion level is the number of non-empty stacks minus
    one (Definition 1). *)

type t

val create : unit -> t

val push : t -> int -> int
(** [push t item] records the item and returns the recursion level of the
    path {e including} it. *)

val pop : t -> int -> unit
(** [pop t item] removes one occurrence.
    @raise Invalid_argument if [item] is not the most recent occurrence on
    its stack (pops must mirror pushes, LIFO per rooted path). *)

val recursion_level : t -> int
(** Recursion level of the current path; -1 when the path is empty. *)

val depth : t -> int
(** Number of items currently on the path. *)

val occurrences : t -> int -> int
(** How many times [item] occurs on the current path. *)

val stack_count : t -> int
(** Number of non-empty internal stacks, i.e. [recursion_level t + 1]. *)
