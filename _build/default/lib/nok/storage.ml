type t = {
  labels : Xml.Label.t array;
  last : int array;
  depth : int array;
  table : Xml.Label.table;
  text : string array;
  attributes : (string * string) list array;
}

type builder = {
  mutable b_labels : int array;
  mutable b_last : int array;
  mutable b_depths : int array;
  mutable b_text : Buffer.t option array;  (* scratch, only with values *)
  mutable b_texts : string array;
  mutable b_attrs : (string * string) list array;
  mutable next : int;
  mutable open_nodes : int list;
  with_values : bool;
  tbl : Xml.Label.table;
}

let ensure_capacity b =
  if b.next >= Array.length b.b_labels then begin
    let n = 2 * Array.length b.b_labels in
    let grow a =
      let bigger = Array.make n 0 in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    b.b_labels <- grow b.b_labels;
    b.b_last <- grow b.b_last;
    b.b_depths <- grow b.b_depths;
    if b.with_values then begin
      let grow_any empty a =
        let bigger = Array.make n empty in
        Array.blit a 0 bigger 0 (Array.length a);
        bigger
      in
      b.b_text <- grow_any None b.b_text;
      b.b_texts <- grow_any "" b.b_texts;
      b.b_attrs <- grow_any [] b.b_attrs
    end
  end

let handle_event b = function
  | Xml.Event.Start_element (name, atts) ->
    ensure_capacity b;
    let i = b.next in
    b.b_labels.(i) <- Xml.Label.intern b.tbl name;
    b.b_depths.(i) <- List.length b.open_nodes;
    if b.with_values then begin
      b.b_attrs.(i) <- atts;
      b.b_text.(i) <- None
    end;
    b.next <- i + 1;
    b.open_nodes <- i :: b.open_nodes
  | Xml.Event.End_element _ ->
    (match b.open_nodes with
     | [] -> invalid_arg "Nok.Storage: unbalanced events"
     | i :: rest ->
       b.b_last.(i) <- b.next - 1;
       if b.with_values then
         b.b_texts.(i) <-
           (match b.b_text.(i) with None -> "" | Some buf -> Buffer.contents buf);
       b.open_nodes <- rest)
  | Xml.Event.Text s ->
    if b.with_values then (
      match b.open_nodes with
      | [] -> ()
      | i :: _ ->
        let buf =
          match b.b_text.(i) with
          | Some buf -> buf
          | None ->
            let buf = Buffer.create (String.length s) in
            b.b_text.(i) <- Some buf;
            buf
        in
        Buffer.add_string buf s)

let finish b =
  if b.open_nodes <> [] then invalid_arg "Nok.Storage: unclosed element";
  {
    labels = Array.sub b.b_labels 0 b.next;
    last = Array.sub b.b_last 0 b.next;
    depth = Array.sub b.b_depths 0 b.next;
    table = b.tbl;
    text = (if b.with_values then Array.sub b.b_texts 0 b.next else [||]);
    attributes = (if b.with_values then Array.sub b.b_attrs 0 b.next else [||]);
  }

let make_builder table with_values =
  let tbl = match table with Some t -> t | None -> Xml.Label.create_table () in
  { b_labels = Array.make 1024 0; b_last = Array.make 1024 0;
    b_depths = Array.make 1024 0;
    b_text = (if with_values then Array.make 1024 None else [||]);
    b_texts = (if with_values then Array.make 1024 "" else [||]);
    b_attrs = (if with_values then Array.make 1024 [] else [||]);
    next = 0; open_nodes = []; with_values; tbl }

let of_events ?table ?(with_values = false) events =
  let b = make_builder table with_values in
  List.iter (handle_event b) events;
  finish b

let of_string ?table ?(with_values = false) input =
  let b = make_builder table with_values in
  Xml.Sax.iter input ~f:(handle_event b);
  finish b

let of_tree (tree : Xml.Tree.t) =
  (* Depth-first with an explicit index counter; trees carry no values. *)
  let n = Xml.Tree.node_count tree in
  let labels = Array.make n 0 and last = Array.make n 0 and depth = Array.make n 0 in
  let next = ref 0 in
  let rec go (node : Xml.Tree.node) d =
    let i = !next in
    incr next;
    labels.(i) <- node.label;
    depth.(i) <- d;
    Array.iter (fun child -> go child (d + 1)) node.children;
    last.(i) <- !next - 1
  in
  go tree.root 0;
  { labels; last; depth; table = tree.table; text = [||]; attributes = [||] }

let node_count (t : t) = Array.length t.labels

let has_values (t : t) = Array.length t.text > 0 || node_count t = 0

let node_text (t : t) i = if Array.length t.text = 0 then "" else t.text.(i)

let node_attribute (t : t) i name =
  if Array.length t.attributes = 0 then None
  else List.assoc_opt name t.attributes.(i)

let children (t : t) i =
  let stop = t.last.(i) in
  let rec go j acc = if j > stop then List.rev acc else go (t.last.(j) + 1) (j :: acc) in
  go (i + 1) []

let parent (t : t) i =
  if i = 0 then None
  else begin
    (* Scan left for the nearest node whose interval covers [i]. Used only in
       tests and diagnostics; the evaluator never needs parents. *)
    let rec go j = if t.last.(j) >= i then Some j else go (j - 1) in
    go (i - 1)
  end

let size_in_bytes (t : t) = 3 * 8 * Array.length t.labels
