exception Query_too_large

exception Values_not_collected
(* Raised when a query carries value predicates but the storage was built
   without [~with_values:true]. *)

let max_query_size = 62

(* Compiled value predicate: the target is either a child label id or an
   attribute name. *)
type vtarget = Vchild of int | Vattr of string

type vpred = { vtarget : vtarget; vcmp : Xpath.Ast.cmp; vlit : Xpath.Ast.literal }

(* Compiled form of the query tree: parallel arrays indexed by QTN id. *)
type compiled = {
  size : int;
  test : int array;  (* label id, or -1 for wildcard, -2 for unmatchable name *)
  is_descendant : bool array;  (* axis connecting the QTN to its parent *)
  parent : int array;  (* -1 for the root *)
  kids : int list array;
  vpreds : vpred list array;
  result_id : int;
}

(* Value comparison semantics: numeric when the literal is a number and the
   document value parses as one; string equality otherwise; ordered
   comparisons on non-numeric text are false. *)
let literal_satisfied (cmp : Xpath.Ast.cmp) (lit : Xpath.Ast.literal) value =
  match lit with
  | Xpath.Ast.Text s ->
    (match cmp with
     | Xpath.Ast.Eq -> String.trim value = s
     | Xpath.Ast.Ne -> String.trim value <> s
     | Xpath.Ast.Lt | Xpath.Ast.Le | Xpath.Ast.Gt | Xpath.Ast.Ge -> false)
  | Xpath.Ast.Number x ->
    (match float_of_string_opt (String.trim value) with
     | None -> (match cmp with Xpath.Ast.Ne -> true | _ -> false)
     | Some v ->
       (match cmp with
        | Xpath.Ast.Eq -> v = x
        | Xpath.Ast.Ne -> v <> x
        | Xpath.Ast.Lt -> v < x
        | Xpath.Ast.Le -> v <= x
        | Xpath.Ast.Gt -> v > x
        | Xpath.Ast.Ge -> v >= x))

let compile (table : Xml.Label.table) (path : Xpath.Ast.t) =
  let qt = Xpath.Query_tree.of_path path in
  if qt.size > max_query_size then raise Query_too_large;
  let test = Array.make qt.size (-2) in
  let is_descendant = Array.make qt.size false in
  let parent = Array.make qt.size (-1) in
  let kids = Array.make qt.size [] in
  let vpreds = Array.make qt.size [] in
  Xpath.Query_tree.iter qt ~f:(fun node ->
      test.(node.id) <-
        (match node.test with
         | Xpath.Ast.Wildcard -> -1
         | Xpath.Ast.Name name ->
           (match Xml.Label.find_opt table name with
            | Some label -> label
            | None -> -2));
      is_descendant.(node.id) <- node.axis = Xpath.Ast.Descendant;
      vpreds.(node.id) <-
        List.map
          (fun (vp : Xpath.Ast.value_predicate) ->
            let vtarget =
              match vp.target with
              | Xpath.Ast.Child_text name ->
                Vchild
                  (match Xml.Label.find_opt table name with
                   | Some l -> l
                   | None -> -2)
              | Xpath.Ast.Attribute a -> Vattr a
            in
            { vtarget; vcmp = vp.cmp; vlit = vp.literal })
          node.value_predicates;
      let children = Xpath.Query_tree.children node in
      kids.(node.id) <- List.map (fun c -> c.Xpath.Query_tree.id) children;
      List.iter (fun c -> parent.(c.Xpath.Query_tree.id) <- node.id) children);
  { size = qt.size; test; is_descendant; parent; kids; vpreds;
    result_id = qt.result.id }

(* Does node [i] satisfy one compiled value predicate? *)
let vpred_satisfied (st : Storage.t) i vp =
  match vp.vtarget with
  | Vattr name ->
    (match Storage.node_attribute st i name with
     | Some v -> literal_satisfied vp.vcmp vp.vlit v
     | None -> false)
  | Vchild label ->
    label >= 0
    && List.exists
         (fun j ->
           st.Storage.labels.(j) = label
           && literal_satisfied vp.vcmp vp.vlit (Storage.node_text st j))
         (Storage.children st i)

let vpreds_satisfied st c i q =
  c.vpreds.(q) = [] || List.for_all (vpred_satisfied st i) c.vpreds.(q)

let test_matches c q label = c.test.(q) = -1 || c.test.(q) = label

(* Pass 1 (children before parents, i.e. reverse pre-order):
   m.(i)    = bitmask of QTNs q such that node i matches q's test and every
              pattern child of q is embedded below i with the right axis;
   msub.(i) = OR of m over the subtree rooted at i. *)
let bottom_up (st : Storage.t) c =
  let n = Storage.node_count st in
  let m = Array.make n 0 and msub = Array.make n 0 in
  for i = n - 1 downto 0 do
    let child_m = ref 0 and desc_m = ref 0 in
    let j = ref (i + 1) in
    while !j <= st.last.(i) do
      child_m := !child_m lor m.(!j);
      desc_m := !desc_m lor msub.(!j);
      j := st.last.(!j) + 1
    done;
    let label = st.labels.(i) in
    let mask = ref 0 in
    for q = 0 to c.size - 1 do
      if test_matches c q label && vpreds_satisfied st c i q then begin
        let ok =
          List.for_all
            (fun k ->
              let need = if c.is_descendant.(k) then !desc_m else !child_m in
              need land (1 lsl k) <> 0)
            c.kids.(q)
        in
        if ok then mask := !mask lor (1 lsl q)
      end
    done;
    m.(i) <- !mask;
    msub.(i) <- !mask lor !desc_m
  done;
  m

(* Pass 2 (pre-order): a node i is a valid image of QTN q iff m.(i) allows it
   and the path above i embeds q's ancestors: for a child-axis q the direct
   parent must be a valid image of q's parent; for a descendant-axis q any
   proper ancestor qualifies. Roots: a child-axis query root only matches the
   document root. The [hits] callback receives every node whose A-mask
   contains the result QTN. *)
let top_down (st : Storage.t) c m ~hits =
  let n = Storage.node_count st in
  (* Stack frames for the current rooted path: (last, a_mask, anc_mask) where
     anc_mask includes the frame's own a_mask. Sized to the document depth. *)
  let depth_cap = 1 + Array.fold_left max 0 st.depth in
  let s_last = Array.make depth_cap 0 in
  let s_a = Array.make depth_cap 0 in
  let s_anc = Array.make depth_cap 0 in
  let top = ref (-1) in
  let result_bit = 1 lsl c.result_id in
  for i = 0 to n - 1 do
    while !top >= 0 && s_last.(!top) < i do decr top done;
    let parent_a = if !top >= 0 then s_a.(!top) else 0 in
    let anc_a = if !top >= 0 then s_anc.(!top) else 0 in
    let a = ref 0 in
    let mi = m.(i) in
    for q = 0 to c.size - 1 do
      if mi land (1 lsl q) <> 0 then begin
        let p = c.parent.(q) in
        let ok =
          if p < 0 then if c.is_descendant.(q) then true else !top < 0
          else if c.is_descendant.(q) then anc_a land (1 lsl p) <> 0
          else parent_a land (1 lsl p) <> 0
        in
        if ok then a := !a lor (1 lsl q)
      end
    done;
    if !a land result_bit <> 0 then hits i;
    incr top;
    s_last.(!top) <- st.last.(i);
    s_a.(!top) <- !a;
    s_anc.(!top) <- anc_a lor !a
  done

let run st path ~hits =
  if Xpath.Ast.has_value_predicates path && not (Storage.has_values st) then
    raise Values_not_collected;
  let c = compile st.Storage.table path in
  let m = bottom_up st c in
  top_down st c m ~hits

let cardinality st path =
  let count = ref 0 in
  run st path ~hits:(fun _ -> incr count);
  !count

let select st path =
  let acc = ref [] in
  run st path ~hits:(fun i -> acc := i :: !acc);
  List.rev !acc
