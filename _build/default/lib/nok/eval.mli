(** Tree-pattern (twig) evaluation over {!Storage} — the repository's
    "actual query processor".

    Two linear passes over the pre-order storage compute, per node, bitmasks
    of query-tree nodes it can embed (bottom-up subtree matching, then
    top-down ancestor-path validation), so the cost is O(document × query)
    with small constants. Used as ground truth for synopsis accuracy
    experiments and as the denominator of the paper's estimation-time /
    query-time ratios (Section 6.4). *)

val cardinality : Storage.t -> Xpath.Ast.t -> int
(** Number of distinct document nodes matched by the query's result step. *)

val select : Storage.t -> Xpath.Ast.t -> int list
(** Pre-order indices of the result nodes, ascending. *)

val max_query_size : int
(** Queries are limited to this many steps (bitmask width); 62. *)

exception Query_too_large

exception Values_not_collected
(** Raised when the query has value predicates but the storage was built
    without [~with_values:true]. *)
