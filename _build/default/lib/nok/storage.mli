(** Succinct physical storage in the spirit of the paper's NoK scheme
    (Zhang, Kacholia, Özsu, ICDE 2004): the document is a pre-order array of
    interned labels plus, per node, the index of its last descendant — an
    interval encoding from which parent/child/descendant relations are
    recovered without pointers. Built in one SAX pass.

    With [~with_values:true] the storage also retains each node's direct
    text content and attributes, enabling evaluation of value predicates
    (the paper's future-work extension). *)

type t = private {
  labels : Xml.Label.t array;  (** node labels in pre-order *)
  last : int array;  (** [last.(i)] is the index of node [i]'s last descendant
                         (or [i] itself for a leaf) *)
  depth : int array;  (** root has depth 0 *)
  table : Xml.Label.table;
  text : string array;  (** per-node direct text; [\[||\]] unless collected *)
  attributes : (string * string) list array;  (** [\[||\]] unless collected *)
}

val of_events : ?table:Xml.Label.table -> ?with_values:bool -> Xml.Event.t list -> t
val of_string : ?table:Xml.Label.table -> ?with_values:bool -> string -> t

val of_tree : Xml.Tree.t -> t
(** Trees are structural, so the result never carries values. *)

val node_count : t -> int

val has_values : t -> bool
(** Whether text and attributes were collected. *)

val node_text : t -> int -> string
(** Direct text of node [i] (concatenated, entity-decoded); [""] when values
    were not collected. *)

val node_attribute : t -> int -> string -> string option

val children : t -> int -> int list
(** Pre-order indices of the children of node [i], in document order. *)

val parent : t -> int -> int option

val size_in_bytes : t -> int
(** Structural footprint a C implementation would use (3 machine words per
    node, excluding any collected values). *)
