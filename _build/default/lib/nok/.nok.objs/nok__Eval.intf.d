lib/nok/eval.mli: Storage Xpath
