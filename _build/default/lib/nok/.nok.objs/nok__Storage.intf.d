lib/nok/storage.mli: Xml
