lib/nok/storage.ml: Array Buffer List String Xml
