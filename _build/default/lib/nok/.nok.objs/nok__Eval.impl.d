lib/nok/eval.ml: Array List Storage String Xml Xpath
