(** Naive, obviously-correct XPath evaluator over {!Xml.Tree}.

    This is the correctness oracle for the fast NoK evaluator and the source
    of "actual cardinality" in small tests. It materializes context sets of
    node ids step by step — no cleverness, quadratic in the worst case. *)

type indexed
(** A tree with preorder node ids, ready for repeated evaluation. *)

val index : Xml.Tree.t -> indexed
val tree : indexed -> Xml.Tree.t

val select : indexed -> Ast.t -> int list
(** Sorted preorder ids (1-based; the virtual document node is 0) of the
    nodes matched by the query's result step. *)

val cardinality : indexed -> Ast.t -> int
(** [List.length (select _ _)], the paper's |p|. *)
