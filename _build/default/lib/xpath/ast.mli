(** Abstract syntax of the XPath fragment the paper estimates: rooted paths
    of child ([/]) and descendant ([//]) steps over name or wildcard tests,
    with nested branching predicates — plus value-based predicates (the
    paper's Section 1 defers them to future work; this library implements
    them as the extension layer the paper anticipates). *)

type axis = Child | Descendant

type test = Name of string | Wildcard

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | Number of float  (** [\[year > 1995\]] *)
  | Text of string  (** [\[payment = 'Creditcard'\]] — [Eq]/[Ne] only *)

type value_target =
  | Child_text of string  (** compare a child element's text content *)
  | Attribute of string  (** compare one of the node's attributes *)

type value_predicate = { target : value_target; cmp : cmp; literal : literal }
(** A value-based constraint (the paper's future-work extension, built here
    on the histogram approach it cites): the node qualifies when some child
    with that name — or its attribute — satisfies the comparison. *)

type step = {
  axis : axis;
  test : test;
  predicates : t list;
  value_predicates : value_predicate list;
}

and t = step list
(** A path is a non-empty step list. A top-level path is rooted (its first
    step applies to the virtual document node); predicate paths are relative
    to the node they qualify. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints in XPath concrete syntax, e.g. [//regions/australia/item[shipping]/location]. *)

val to_string : t -> string

val steps : t -> int
(** Number of location steps, including steps inside predicates. *)

val predicate_count : t -> int
(** Total number of predicates, nested included. *)

val max_predicates_per_step : t -> int
(** The paper's MBP measure of a workload query (structural predicates). *)

val value_predicate_count : t -> int
(** Total number of value predicates, nested included. *)

val has_value_predicates : t -> bool

val strip_value_predicates : t -> t
(** The structural skeleton: every value predicate dropped. *)

val has_descendant : t -> bool
val has_wildcard : t -> bool
