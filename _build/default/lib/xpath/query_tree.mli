(** The query-tree (QTN) form of a path expression.

    The XSEED matcher (paper Algorithm 3) and the NoK evaluator both match a
    {e tree pattern}: the main path is a spine of nodes, each carrying its
    branching predicates as extra children; the last spine node is the result
    node whose matches are counted. *)

type node = private {
  id : int;  (** dense preorder id, root = 0 *)
  axis : Ast.axis;  (** axis connecting this node to its parent *)
  test : Ast.test;
  predicates : node list;
  value_predicates : Ast.value_predicate list;
  spine : node option;  (** the continuation of the main path, if any *)
  on_result_path : bool;  (** true for spine nodes of the top-level path *)
}

type t = { root : node; size : int; result : node }
(** [result] is the deepest spine node: the node whose matches the query
    returns. *)

val of_path : Ast.t -> t

val children : node -> node list
(** Predicates followed by the spine child. *)

val is_result : t -> node -> bool
val iter : t -> f:(node -> unit) -> unit
val find : t -> int -> node
(** @raise Not_found on an out-of-range id. *)

val to_path : t -> Ast.t
(** Inverse of {!of_path}. *)

val pp : Format.formatter -> t -> unit
