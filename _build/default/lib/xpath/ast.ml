type axis = Child | Descendant

type test = Name of string | Wildcard

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal = Number of float | Text of string

type value_target = Child_text of string | Attribute of string

type value_predicate = { target : value_target; cmp : cmp; literal : literal }

type step = {
  axis : axis;
  test : test;
  predicates : t list;
  value_predicates : value_predicate list;
}

and t = step list

let rec compare_step a b =
  let c = Stdlib.compare a.axis b.axis in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.test b.test in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.value_predicates b.value_predicates in
      if c <> 0 then c else List.compare compare a.predicates b.predicates

and compare a b = List.compare compare_step a b

let equal a b = compare a b = 0

let pp_test ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Wildcard -> Format.pp_print_char ppf '*'

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_literal ppf = function
  | Number x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Format.pp_print_int ppf (int_of_float x)
    else Format.fprintf ppf "%g" x
  | Text s -> Format.fprintf ppf "'%s'" s

let pp_value_predicate ppf { target; cmp; literal } =
  (match target with
   | Child_text n -> Format.pp_print_string ppf n
   | Attribute a -> Format.fprintf ppf "@%s" a);
  Format.pp_print_string ppf (cmp_to_string cmp);
  pp_literal ppf literal

let rec pp_step ppf { axis; test; predicates; value_predicates } =
  (match axis with
   | Child -> Format.pp_print_string ppf "/"
   | Descendant -> Format.pp_print_string ppf "//");
  pp_test ppf test;
  pp_qualifiers ppf predicates value_predicates

and pp_qualifiers ppf predicates value_predicates =
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_relative p) predicates;
  List.iter (fun v -> Format.fprintf ppf "[%a]" pp_value_predicate v) value_predicates

and pp ppf path = List.iter (pp_step ppf) path

and pp_relative ppf = function
  | [] -> ()
  | first :: rest ->
    (* Inside a predicate a leading child axis is implicit; a leading
       descendant axis is written [.//], XPath style. *)
    (match first.axis with
     | Child -> ()
     | Descendant -> Format.pp_print_string ppf ".//");
    pp_test ppf first.test;
    pp_qualifiers ppf first.predicates first.value_predicates;
    pp ppf rest

let to_string path = Format.asprintf "%a" pp path

let rec steps path =
  List.fold_left
    (fun acc step -> acc + 1 + List.fold_left (fun a p -> a + steps p) 0 step.predicates)
    0 path

let rec predicate_count path =
  List.fold_left
    (fun acc step ->
      acc
      + List.length step.predicates
      + List.fold_left (fun a p -> a + predicate_count p) 0 step.predicates)
    0 path

let rec value_predicate_count path =
  List.fold_left
    (fun acc step ->
      acc
      + List.length step.value_predicates
      + List.fold_left (fun a p -> a + value_predicate_count p) 0 step.predicates)
    0 path

let has_value_predicates path = value_predicate_count path > 0

let rec strip_value_predicates path =
  List.map
    (fun step ->
      { step with value_predicates = [];
        predicates = List.map strip_value_predicates step.predicates })
    path

let rec max_predicates_per_step path =
  List.fold_left
    (fun acc step ->
      let nested =
        List.fold_left (fun a p -> max a (max_predicates_per_step p)) 0 step.predicates
      in
      max acc (max (List.length step.predicates) nested))
    0 path

let rec has_descendant path =
  List.exists
    (fun step -> step.axis = Descendant || List.exists has_descendant step.predicates)
    path

let rec has_wildcard path =
  List.exists
    (fun step -> step.test = Wildcard || List.exists has_wildcard step.predicates)
    path
