type shape = Simple | Branching | Complex

let shape path =
  if Ast.has_descendant path || Ast.has_wildcard path then Complex
  else if Ast.predicate_count path > 0 then Branching
  else Simple

let qrl path =
  let qt = Query_tree.of_path path in
  (* Walk every rooted path of the query tree counting, per node test, how
     often it occurs with a descendant axis. *)
  let best = ref 0 in
  let rec go node counts =
    let counts =
      if node.Query_tree.axis = Ast.Descendant then begin
        let key = node.test in
        let prev = Option.value (List.assoc_opt key counts) ~default:0 in
        let now = prev + 1 in
        if now - 1 > !best then best := now - 1;
        (key, now) :: List.remove_assoc key counts
      end
      else counts
    in
    List.iter (fun child -> go child counts) (Query_tree.children node)
  in
  go qt.root [];
  !best

let is_recursive path = qrl path >= 1

let shape_to_string = function
  | Simple -> "SP"
  | Branching -> "BP"
  | Complex -> "CP"

let pp_shape ppf s = Format.pp_print_string ppf (shape_to_string s)
