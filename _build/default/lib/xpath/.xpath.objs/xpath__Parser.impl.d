lib/xpath/parser.ml: Ast Char Format List String
