lib/xpath/classify.ml: Ast Format List Option Query_tree
