lib/xpath/query_tree.ml: Ast List
