lib/xpath/eval_reference.ml: Array Ast Hashtbl Int List Xml
