lib/xpath/ast.ml: Float Format List Stdlib
