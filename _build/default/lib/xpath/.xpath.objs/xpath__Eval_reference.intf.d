lib/xpath/eval_reference.mli: Ast Xml
