lib/xpath/classify.mli: Ast Format
