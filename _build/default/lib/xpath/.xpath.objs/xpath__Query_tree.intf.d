lib/xpath/query_tree.mli: Ast Format
