type inode = { id : int; label : Xml.Label.t; kids : inode array }

type indexed = { doc : inode; source : Xml.Tree.t }

let index (t : Xml.Tree.t) =
  let next = ref 0 in
  let rec mirror (node : Xml.Tree.node) =
    incr next;
    let id = !next in
    (* Allocate ids in preorder: parent before children. *)
    let kids = Array.map mirror node.children in
    { id; label = node.label; kids }
  in
  let root = mirror t.root in
  { doc = { id = 0; label = -1; kids = [| root |] }; source = t }

let tree idx = idx.source

let test_matches (idx : indexed) (test : Ast.test) (node : inode) =
  match test with
  | Ast.Wildcard -> true
  | Ast.Name name ->
    (match Xml.Label.find_opt idx.source.table name with
     | Some label -> node.label = label
     | None -> false)

(* [matches_path idx node path] — does the relative [path] starting at [node]
   select at least one node? *)
let rec matches_path idx node (path : Ast.t) =
  match path with
  | [] -> true
  | step :: rest ->
    (match step.axis with
     | Ast.Child ->
       Array.exists (fun kid -> matches_step idx kid step rest) node.kids
     | Ast.Descendant ->
       let rec any_desc n =
         Array.exists
           (fun kid -> matches_step idx kid step rest || any_desc kid)
           n.kids
       in
       any_desc node)

and matches_step idx node (step : Ast.step) rest =
  test_matches idx step.test node
  && List.for_all (fun p -> matches_path idx node p) step.predicates
  && matches_path idx node rest

let select idx path =
  (* Materialize context sets level by level; dedupe by id. *)
  let step_once context (step : Ast.step) =
    let out = Hashtbl.create 64 in
    let consider node =
      if
        test_matches idx step.test node
        && List.for_all (fun p -> matches_path idx node p) step.predicates
      then Hashtbl.replace out node.id node
    in
    let visit node =
      match step.axis with
      | Ast.Child -> Array.iter consider node.kids
      | Ast.Descendant ->
        let rec go n =
          Array.iter (fun kid -> consider kid; go kid) n.kids
        in
        go node
    in
    List.iter visit context;
    let nodes = Hashtbl.fold (fun _ node acc -> node :: acc) out [] in
    List.sort (fun a b -> Int.compare a.id b.id) nodes
  in
  let final = List.fold_left step_once [ idx.doc ] path in
  List.map (fun n -> n.id) final

let cardinality idx path = List.length (select idx path)
