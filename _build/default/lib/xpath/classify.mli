(** Workload classification used throughout the paper's evaluation:
    simple (SP), branching (BP) and complex (CP) path expressions, plus the
    query recursion level (QRL) of Section 2.1. *)

type shape =
  | Simple  (** linear, child axes only *)
  | Branching  (** has predicates, child axes only *)
  | Complex  (** contains a descendant axis or a wildcard *)

val shape : Ast.t -> shape

val qrl : Ast.t -> int
(** Query recursion level: the maximum number of repetitions of the same
    node test appearing with a descendant axis along any rooted path of the
    query tree, minus one — zero for non-recursive queries. *)

val is_recursive : Ast.t -> bool
(** [qrl q >= 1]; e.g. [//s//s] is recursive, [/a//b] is not. *)

val pp_shape : Format.formatter -> shape -> unit
val shape_to_string : shape -> string
