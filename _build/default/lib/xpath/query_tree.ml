type node = {
  id : int;
  axis : Ast.axis;
  test : Ast.test;
  predicates : node list;
  value_predicates : Ast.value_predicate list;
  spine : node option;
  on_result_path : bool;
}

type t = { root : node; size : int; result : node }

let of_path path =
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  (* Build in preorder: node ids are allocated parent-first, predicates
     before the spine continuation, matching {!children} order. *)
  let rec build ~on_result_path = function
    | [] -> invalid_arg "Query_tree.of_path: empty path"
    | (step : Ast.step) :: rest ->
      let id = fresh () in
      let predicates =
        List.map (fun p -> build ~on_result_path:false p) step.predicates
      in
      let spine =
        match rest with [] -> None | _ -> Some (build ~on_result_path rest)
      in
      { id; axis = step.axis; test = step.test; predicates;
        value_predicates = step.value_predicates; spine; on_result_path }
  in
  let root = build ~on_result_path:true path in
  let rec deepest node = match node.spine with None -> node | Some s -> deepest s in
  { root; size = !next; result = deepest root }

let children node =
  node.predicates @ (match node.spine with None -> [] | Some s -> [ s ])

let is_result t node = node.id = t.result.id

let iter t ~f =
  let rec go node =
    f node;
    List.iter go (children node)
  in
  go t.root

let find t id =
  let found = ref None in
  iter t ~f:(fun node -> if node.id = id then found := Some node);
  match !found with Some n -> n | None -> raise Not_found

let to_path t =
  let rec spine_of node =
    let step =
      { Ast.axis = node.axis; test = node.test;
        predicates = List.map pred_path node.predicates;
        value_predicates = node.value_predicates }
    in
    step :: (match node.spine with None -> [] | Some s -> spine_of s)
  and pred_path node = spine_of node in
  spine_of t.root

let pp ppf t = Ast.pp ppf (to_path t)
