type t = {
  order : int;
  counts : (Xml.Label.t list, int) Hashtbl.t;
  table : Xml.Label.table;
}

let build ?(order = 2) ?(prune_below = 0) (st : Nok.Storage.t) =
  if order < 1 then invalid_arg "Markov_table.build: order must be >= 1";
  let counts = Hashtbl.create 1024 in
  let bump key = Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0) in
  let n = Nok.Storage.node_count st in
  (* Walk in pre-order keeping the rooted label path (nearest-first); for
     each node record the suffix paths of length 1..order ending at it. *)
  let stack_labels = Array.make 64 0 in
  let stack_last = Array.make 64 0 in
  let stack_labels = ref stack_labels and stack_last = ref stack_last in
  let top = ref (-1) in
  for i = 0 to n - 1 do
    while !top >= 0 && (!stack_last).(!top) < i do decr top done;
    incr top;
    if !top >= Array.length !stack_labels then begin
      let grow a =
        let b = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      stack_labels := grow !stack_labels;
      stack_last := grow !stack_last
    end;
    (!stack_labels).(!top) <- st.labels.(i);
    (!stack_last).(!top) <- st.last.(i);
    let max_len = min order (!top + 1) in
    for len = 1 to max_len do
      let key = List.init len (fun j -> (!stack_labels).(!top - len + 1 + j)) in
      bump key
    done
  done;
  if prune_below > 0 then
    Hashtbl.iter
      (fun key c -> if c < prune_below then Hashtbl.remove counts key)
      (Hashtbl.copy counts);
  { order; counts; table = st.table }

let order t = t.order
let entry_count t = Hashtbl.length t.counts
let size_in_bytes t = 12 * entry_count t

let lookup_path_count t labels =
  Option.value (Hashtbl.find_opt t.counts labels) ~default:0

(* The supported fragment: name-only child steps, no predicates; the first
   step's axis may be either (the table cannot distinguish a rooted path
   from an anywhere path, a known limitation of this baseline). *)
let linear_labels table (path : Xpath.Ast.t) =
  let rec go acc first = function
    | [] -> Some (List.rev acc)
    | ({ axis; test = Xpath.Ast.Name n; predicates = []; value_predicates = [] }
       : Xpath.Ast.step)
      :: rest
      when axis = Xpath.Ast.Child || first ->
      (match Xml.Label.find_opt table n with
       | Some l -> go (l :: acc) false rest
       | None -> Some [])  (* unknown label: supported, cardinality 0 *)
    | _ :: _ -> None
  in
  go [] true path

let estimate t path =
  match linear_labels t.table path with
  | None -> None
  | Some [] -> Some 0.0
  | Some labels ->
    let n = List.length labels in
    let arr = Array.of_list labels in
    let sub start len = List.init len (fun j -> arr.(start + j)) in
    if n <= t.order then Some (float_of_int (lookup_path_count t labels))
    else begin
      (* f(t1..tk) * prod_{j} f(tj..t(j+k-1)) / f(tj..t(j+k-2)) *)
      let k = t.order in
      let first = float_of_int (lookup_path_count t (sub 0 k)) in
      let rec chain j acc =
        if j + k - 1 >= n then acc
        else
          let numer = float_of_int (lookup_path_count t (sub j k)) in
          let denom = float_of_int (lookup_path_count t (sub j (k - 1))) in
          if denom = 0.0 then 0.0 else chain (j + 1) (acc *. numer /. denom)
      in
      Some (chain 1 first)
    end
