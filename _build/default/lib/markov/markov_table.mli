(** Markov-table path estimator (Aboulnaga, Alameldeen, Naughton, VLDB 2001)
    — a related-work baseline ([1] in the paper).

    Stores the exact occurrence count of every label path of length at most
    [order] and estimates a longer simple path by chaining conditional
    probabilities:
    {v |t1..tn| ~ f(t1..tk) * prod_j f(tj..t(j+k-1)) / f(tj..t(j+k-2)) v}

    Like the original (and unlike XSEED), it covers only {e linear} queries:
    child-axis name-test paths, optionally rooted by a descendant step.
    {!estimate} returns [None] for anything else — the coverage gap the
    paper's related-work section points out, quantified by the `ablation`
    bench section. *)

type t

val build : ?order:int -> ?prune_below:int -> Nok.Storage.t -> t
(** [order] defaults to 2. [prune_below] (default 0 = keep all) drops paths
    with fewer occurrences, trading memory for accuracy on rare paths (the
    original's summarization step, simplified). *)

val order : t -> int
val entry_count : t -> int

val size_in_bytes : t -> int
(** 12 bytes per retained path (hash key + count), comparable with the other
    synopses' accounting. *)

val estimate : t -> Xpath.Ast.t -> float option
(** [None] when the query is outside the supported fragment (branching
    predicates, wildcards, or descendant axes after the first step). *)

val lookup_path_count : t -> Xml.Label.t list -> int
(** Exact stored count for a path no longer than [order]; 0 if pruned or
    absent. *)
