lib/markov/markov_table.mli: Nok Xml Xpath
