lib/markov/markov_table.ml: Array Hashtbl List Nok Option Xml Xpath
