type cls = {
  label : int;
  mutable card : int;
  mutable out : (int, float) Hashtbl.t;  (* target class id (maybe stale) -> total *)
  mutable ins : int list;  (* source class ids (maybe stale) *)
  mutable alive : bool;
}

type t = {
  table : Xml.Label.table;
  classes : cls array;
  parent : int array;  (* union-find over class ids *)
  mutable root : int;
}

type build_stats = {
  initial_classes : int;
  merges : int;
  work : int;
  completed : bool;
}

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

(* Rebuild a class's out-table with canonical keys, coalescing totals. *)
let normalize_out t (c : cls) =
  let fresh = Hashtbl.create (Hashtbl.length c.out) in
  Hashtbl.iter
    (fun k v ->
      let k = find t k in
      Hashtbl.replace fresh k (v +. Option.value (Hashtbl.find_opt fresh k) ~default:0.0))
    c.out;
  c.out <- fresh

let normalize_ins t (c : cls) =
  c.ins <- List.sort_uniq Int.compare (List.map (find t) c.ins)

(* ------------------------------------------------------------------ *)
(* Perfect (count-stable) partition via bottom-up hash-consing. *)

let initial_partition (st : Nok.Storage.t) =
  let n = Nok.Storage.node_count st in
  let class_of = Array.make n 0 in
  let signatures = Hashtbl.create 1024 in
  let class_list = ref [] in
  let next_class = ref 0 in
  for i = n - 1 downto 0 do
    (* Multiset of child classes. *)
    let counts = Hashtbl.create 4 in
    let j = ref (i + 1) in
    while !j <= st.last.(i) do
      let c = class_of.(!j) in
      Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0);
      j := st.last.(!j) + 1
    done;
    let signature =
      ( st.labels.(i),
        List.sort compare (Hashtbl.fold (fun c k acc -> (c, k) :: acc) counts []) )
    in
    let cid =
      match Hashtbl.find_opt signatures signature with
      | Some cid -> cid
      | None ->
        let cid = !next_class in
        incr next_class;
        Hashtbl.add signatures signature cid;
        class_list := (cid, st.labels.(i)) :: !class_list;
        cid
    in
    class_of.(i) <- cid
  done;
  let classes =
    Array.make !next_class
      { label = 0; card = 0; out = Hashtbl.create 0; ins = []; alive = false }
  in
  List.iter
    (fun (cid, label) ->
      classes.(cid) <-
        { label; card = 0; out = Hashtbl.create 4; ins = []; alive = true })
    !class_list;
  (* Cardinalities and edge totals. *)
  for i = 0 to n - 1 do
    let u = classes.(class_of.(i)) in
    u.card <- u.card + 1;
    let j = ref (i + 1) in
    while !j <= st.last.(i) do
      let c = class_of.(!j) in
      Hashtbl.replace u.out c
        (1.0 +. Option.value (Hashtbl.find_opt u.out c) ~default:0.0);
      j := st.last.(!j) + 1
    done
  done;
  Array.iteri
    (fun uid u ->
      Hashtbl.iter (fun vid _ -> classes.(vid).ins <- uid :: classes.(vid).ins) u.out)
    classes;
  Array.iter (fun c -> c.ins <- List.sort_uniq Int.compare c.ins) classes;
  (classes, class_of.(0))

(* ------------------------------------------------------------------ *)

let class_count t =
  Array.fold_left (fun acc c -> if c.alive then acc + 1 else acc) 0 t.classes

let edge_count t =
  let count = ref 0 in
  Array.iter
    (fun c ->
      if c.alive then begin
        normalize_out t c;
        count := !count + Hashtbl.length c.out
      end)
    t.classes;
  !count

let size_in_bytes t = (8 * class_count t) + (8 * edge_count t)

(* Squared-error cost of merging same-label classes a and b. *)
let merge_cost t a b =
  let ca = float_of_int a.card and cb = float_of_int b.card in
  let union = Hashtbl.create 8 in
  let add tbl side =
    Hashtbl.iter
      (fun k v ->
        let k = find t k in
        let l, r = Option.value (Hashtbl.find_opt union k) ~default:(0.0, 0.0) in
        Hashtbl.replace union k (if side = 0 then (l +. v, r) else (l, r +. v)))
      tbl
  in
  add a.out 0;
  add b.out 1;
  let cost = ref 0.0 in
  Hashtbl.iter
    (fun _ (ta, tb) ->
      let avg_a = ta /. ca and avg_b = tb /. cb in
      let avg_m = (ta +. tb) /. (ca +. cb) in
      cost :=
        !cost
        +. (ca *. (avg_a -. avg_m) *. (avg_a -. avg_m))
        +. (cb *. (avg_b -. avg_m) *. (avg_b -. avg_m)))
    union;
  (!cost, Hashtbl.length union)

let merge t aid bid =
  let a = t.classes.(aid) and b = t.classes.(bid) in
  a.card <- a.card + b.card;
  Hashtbl.iter
    (fun k v ->
      let k = find t k in
      Hashtbl.replace a.out k (v +. Option.value (Hashtbl.find_opt a.out k) ~default:0.0))
    b.out;
  normalize_out t a;
  (* Redirect in-edges pointing at b. *)
  normalize_ins t b;
  List.iter
    (fun pid ->
      let p = t.classes.(pid) in
      if p.alive then begin
        match Hashtbl.find_opt p.out bid with
        | None -> normalize_out t p  (* stale key; rebuild *)
        | Some v ->
          Hashtbl.remove p.out bid;
          Hashtbl.replace p.out aid
            (v +. Option.value (Hashtbl.find_opt p.out aid) ~default:0.0)
      end)
    b.ins;
  a.ins <- List.rev_append b.ins a.ins;
  b.alive <- false;
  t.parent.(bid) <- aid;
  normalize_ins t a;
  if find t t.root = aid then t.root <- aid

(* Same-label pair evaluation cap per sweep: keeps a sweep polynomial while
   preserving the overall quadratic trend the paper reports. *)
let per_label_limit = 32

let alive_groups t =
  let groups = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      if c.alive then
        Hashtbl.replace groups c.label
          (i :: Option.value (Hashtbl.find_opt groups c.label) ~default:[]))
    t.classes;
  groups

let build ?budget_bytes ?(max_work = 50_000_000) storage =
  let classes, root = initial_partition storage in
  let t =
    { table = storage.Nok.Storage.table; classes;
      parent = Array.init (Array.length classes) Fun.id; root }
  in
  let initial = Array.length classes in
  let merges = ref 0 and work = ref 0 and completed = ref true in
  (match budget_bytes with
   | None -> ()
   | Some budget ->
     let over_work () = !work > max_work in
     (* Phase 1 — bulk coarsening: while the population is far above the
        budget, halve each label group by merging cardinality-adjacent
        pairs without cost evaluation. *)
     let target_classes = max (Xml.Label.count t.table) (budget / 16) in
     let bulk_done = ref false in
     while (not !bulk_done) && (not (over_work ()))
           && class_count t > 4 * target_classes do
       let before = class_count t in
       Hashtbl.iter
         (fun _ ids ->
           let sorted =
             List.sort
               (fun i j -> Int.compare t.classes.(i).card t.classes.(j).card)
               ids
           in
           let rec pairwise = function
             | a :: b :: rest ->
               merge t a b;
               incr merges;
               work := !work + 1;
               pairwise rest
             | _ -> ()
           in
           pairwise sorted)
         (alive_groups t);
       if class_count t >= before then bulk_done := true
     done;
     (* Phase 2 — greedy: per sweep, merge the least-cost same-label pair of
        each label group until the synopsis fits. The budget is re-measured
        once per sweep (size_in_bytes is a full normalization scan), so a
        sweep may overshoot below the budget by at most one merge per label
        group — harmless, and it keeps the loop out of O(sweeps x edges). *)
     let continue_ = ref true in
     while !continue_ && size_in_bytes t > budget do
       let merged_this_sweep = ref false in
       Hashtbl.iter
         (fun _ ids ->
           if !continue_ then begin
             let ids =
               let sorted =
                 List.sort
                   (fun i j -> Int.compare t.classes.(i).card t.classes.(j).card)
                   ids
               in
               List.filteri (fun k _ -> k < per_label_limit) sorted
             in
             let arr = Array.of_list ids in
             let best = ref None in
             for i = 0 to Array.length arr - 1 do
               for j = i + 1 to Array.length arr - 1 do
                 let cost, ops =
                   merge_cost t t.classes.(arr.(i)) t.classes.(arr.(j))
                 in
                 work := !work + ops + 1;
                 match !best with
                 | Some (bc, _, _) when bc <= cost -> ()
                 | _ -> best := Some (cost, arr.(i), arr.(j))
               done
             done;
             (match !best with
              | Some (_, a, b) ->
                merge t a b;
                incr merges;
                merged_this_sweep := true
              | None -> ());
             if over_work () then begin
               completed := false;
               continue_ := false
             end
           end)
         (alive_groups t);
       if not !merged_this_sweep then continue_ := false
     done);
  (t, { initial_classes = initial; merges = !merges; work = !work;
        completed = !completed })

let table t = t.table

(* ------------------------------------------------------------------ *)
(* Estimation: expand into a synthetic EPT and reuse the shared matcher. *)

let estimate ?(card_threshold = 0.5) ?(max_depth = 40) ?(max_nodes = 500_000) t
    path =
  Array.iter (fun c -> if c.alive then normalize_out t c) t.classes;
  let nodes = ref 0 in
  let rec expand cid card depth ~bsel =
    let c = t.classes.(cid) in
    incr nodes;
    let children =
      if depth >= max_depth || !nodes > max_nodes then []
      else
        Hashtbl.fold (fun k total acc -> (find t k, total) :: acc) c.out []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.filter_map (fun (kid, total) ->
               let avg = total /. float_of_int c.card in
               let child_card = card *. avg in
               if child_card <= card_threshold then None
               else Some (expand kid child_card (depth + 1) ~bsel:(Float.min 1.0 avg)))
    in
    Core.Matcher.synthetic_node ~label:c.label ~card ~bsel ~children
  in
  let root = find t t.root in
  let root_node = expand root (float_of_int t.classes.(root).card) 0 ~bsel:1.0 in
  let ept = Core.Matcher.of_synthetic root_node in
  Core.Matcher.estimate ~table:t.table ept (Xpath.Query_tree.of_path path)
