(** TreeSketch baseline (Polyzotis, Garofalakis, Ioannidis, SIGMOD 2004),
    reimplemented from its published description for the paper's comparison
    experiments (Tables 2 and 3, Figure 5).

    A TreeSketch is a partition of the document nodes into same-label
    classes; each class edge (U, V) carries the {e total} number of V-class
    children under U-class nodes, so the average count [total / |U|] is the
    estimated fan-out. Construction starts from the {e count-stable}
    partition (exact for twig counting — built bottom-up by hash-consing
    each node's (label, child-class multiset) signature) and then greedily
    merges the same-label class pair with the least squared count error
    until the synopsis fits the memory budget.

    The two properties the paper exploits are reproduced faithfully:
    - merging is quadratic-ish in the class population, so construction cost
      explodes on structure-rich documents (a work cutoff surfaces the
      paper's "DNF" entries instead of hanging);
    - classes carry no recursion-level information, so on recursive data the
      budgeted sketch collapses distinct nesting depths and the estimates
      degrade — XSEED's advantage in Table 3. *)

type t

type build_stats = {
  initial_classes : int;
  merges : int;
  work : int;  (** pair-evaluation operations performed *)
  completed : bool;  (** false when the work cutoff fired (the paper's DNF) *)
}

val build : ?budget_bytes:int -> ?max_work:int -> Nok.Storage.t -> t * build_stats
(** [budget_bytes] defaults to unlimited (the perfect, count-stable sketch).
    [max_work] (default 50_000_000) bounds construction effort. *)

val class_count : t -> int
val edge_count : t -> int

val size_in_bytes : t -> int
(** 8 bytes per class + 8 per class edge, comparable with
    {!Core.Kernel.size_in_bytes}. *)

val estimate :
  ?card_threshold:float -> ?max_depth:int -> ?max_nodes:int -> t -> Xpath.Ast.t -> float
(** Expand the sketch into an estimated path tree (cards multiply average
    counts; a branch's backward selectivity is [min 1 avg]) and run the
    shared matcher. [max_depth] (default 40) bounds expansion through the
    cycles a budgeted sketch can contain; [card_threshold] defaults to 0.5
    like XSEED's traveler. *)

val table : t -> Xml.Label.table
