lib/treesketch/sketch.ml: Array Core Float Fun Hashtbl Int List Nok Option Xml Xpath
