lib/treesketch/sketch.mli: Nok Xml Xpath
