lib/pathtree/path_tree.ml: Hashtbl Int List Xml Xpath
