lib/pathtree/path_tree.mli: Xml Xpath
