(** The path tree of Aboulnaga et al. (VLDB 2001), as used by the paper
    (Figure 1): one node per distinct rooted label path, annotated with the
    exact cardinality of that path and the backward selectivity of its last
    step. The XSEED HET construction walks it to find the simple paths whose
    kernel estimate errs most, and the workload generator enumerates it to
    produce all SP queries. *)

type node = private {
  label : Xml.Label.t;
  cardinality : int;
      (** number of document nodes whose rooted label path is this node's *)
  parents_with_child : int;
      (** number of document nodes on the parent path having at least one
          child with this label — the numerator of backward selectivity *)
  children : node list;  (** ordered by label id *)
}

type t = { root : node; table : Xml.Label.table; size : int }

val of_events : ?table:Xml.Label.table -> Xml.Event.t list -> t
val of_string : ?table:Xml.Label.table -> string -> t

val bsel : t -> parent:node option -> node -> float
(** Backward selectivity of [node] under its [parent] path: the fraction of
    parent-path document nodes that have at least one child labeled like
    [node]. The root's bsel is 1. *)

val find_path : t -> Xml.Label.t list -> node option
(** Look up a rooted label path (root label first). *)

val cardinality_of_labels : t -> Xml.Label.t list -> int
(** Exact cardinality of the rooted simple path, 0 when absent. *)

val simple_path_cardinality : t -> Xpath.Ast.t -> int option
(** Exact |p| for a simple path query (child axes, name tests, no
    predicates); [None] if the query is not simple. *)

val iter_paths : t -> f:(Xml.Label.t list -> parent:node option -> node -> unit) -> unit
(** Pre-order walk; the label list is the rooted path, root first. *)

val all_simple_paths : t -> (Xml.Label.t list * int) list
(** Every rooted label path with its cardinality, pre-order. The SP workload
    of Section 6.1 is exactly this list rendered as queries. *)

val size : t -> int
(** Number of path-tree nodes (distinct rooted paths). *)

val depth : t -> int
