type node = {
  label : Xml.Label.t;
  cardinality : int;
  parents_with_child : int;
  children : node list;
}

type t = { root : node; table : Xml.Label.table; size : int }

(* Mutable shadow used during the single construction pass. *)
type mnode = {
  mlabel : Xml.Label.t;
  mutable mcard : int;
  mutable mparents : int;
  mkids : (Xml.Label.t, mnode) Hashtbl.t;
}

let new_mnode label = { mlabel = label; mcard = 0; mparents = 0; mkids = Hashtbl.create 4 }

let freeze table (root : mnode) =
  let size = ref 0 in
  let rec go m =
    incr size;
    let kids =
      Hashtbl.fold (fun _ k acc -> k :: acc) m.mkids []
      |> List.sort (fun a b -> Int.compare a.mlabel b.mlabel)
      |> List.map go
    in
    { label = m.mlabel; cardinality = m.mcard; parents_with_child = m.mparents;
      children = kids }
  in
  let root = go root in
  { root; table; size = !size }

let build ~table feed =
  let table = match table with Some t -> t | None -> Xml.Label.create_table () in
  (* Stack entries: the path-tree node for the open element plus the set of
     child labels seen under this particular document node (to count
     parents_with_child once per parent). *)
  let root = ref None in
  let stack = ref [] in
  let handle = function
    | Xml.Event.Start_element (name, _) ->
      let label = Xml.Label.intern table name in
      let m =
        match !stack with
        | [] ->
          (match !root with
           | Some r ->
             if r.mlabel <> label then
               invalid_arg "Path_tree: documents with different roots share a table"
             else r
           | None ->
             let r = new_mnode label in
             root := Some r;
             r)
        | (parent, seen) :: _ ->
          let m =
            match Hashtbl.find_opt parent.mkids label with
            | Some m -> m
            | None ->
              let m = new_mnode label in
              Hashtbl.add parent.mkids label m;
              m
          in
          if not (Hashtbl.mem seen label) then begin
            Hashtbl.add seen label ();
            m.mparents <- m.mparents + 1
          end;
          m
      in
      m.mcard <- m.mcard + 1;
      stack := (m, Hashtbl.create 4) :: !stack
    | Xml.Event.End_element _ ->
      (match !stack with
       | [] -> invalid_arg "Path_tree: unbalanced events"
       | _ :: rest -> stack := rest)
    | Xml.Event.Text _ -> ()
  in
  feed handle;
  if !stack <> [] then invalid_arg "Path_tree: unclosed element";
  match !root with
  | None -> invalid_arg "Path_tree: empty document"
  | Some r ->
    r.mparents <- 1;  (* the virtual document node always has the root child *)
    freeze table r

let of_events ?table events = build ~table (fun f -> List.iter f events)
let of_string ?table input = build ~table (fun f -> Xml.Sax.iter input ~f)

let bsel _t ~parent node =
  match parent with
  | None -> 1.0
  | Some p ->
    if p.cardinality = 0 then 0.0
    else float_of_int node.parents_with_child /. float_of_int p.cardinality

let find_path t labels =
  match labels with
  | [] -> None
  | first :: rest ->
    if first <> t.root.label then None
    else
      let rec go node = function
        | [] -> Some node
        | l :: rest ->
          (match List.find_opt (fun k -> k.label = l) node.children with
           | Some k -> go k rest
           | None -> None)
      in
      go t.root rest

let cardinality_of_labels t labels =
  match find_path t labels with Some n -> n.cardinality | None -> 0

let simple_path_cardinality t (path : Xpath.Ast.t) =
  let rec labels acc = function
    | [] -> Some (List.rev acc)
    | ({ axis = Xpath.Ast.Child; test = Xpath.Ast.Name n; predicates = [];
         value_predicates = [] } : Xpath.Ast.step)
      :: rest ->
      (match Xml.Label.find_opt t.table n with
       | Some l -> labels (l :: acc) rest
       | None -> Some []  (* unknown label: simple, cardinality 0 *))
    | _ :: _ -> None
  in
  match labels [] path with
  | None -> None
  | Some [] -> Some 0
  | Some ls -> Some (cardinality_of_labels t ls)

let iter_paths t ~f =
  let rec go rev_path ~parent node =
    let rev_path = node.label :: rev_path in
    f (List.rev rev_path) ~parent node;
    List.iter (go rev_path ~parent:(Some node)) node.children
  in
  go [] ~parent:None t.root

let all_simple_paths t =
  let acc = ref [] in
  iter_paths t ~f:(fun path ~parent:_ node -> acc := (path, node.cardinality) :: !acc);
  List.rev !acc

let size t = t.size

let depth t =
  let rec go node =
    List.fold_left (fun acc k -> max acc (1 + go k)) 1 node.children
  in
  go t.root
