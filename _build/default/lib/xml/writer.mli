(** Serialize event streams and trees back to XML text. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attribute : string -> string
(** Escape ampersand, angle brackets and double quote for a double-quoted
    attribute value. *)

val events_to_string : Event.t list -> string
(** Render an event stream. No indentation is inserted, so parsing the result
    yields the same events back. *)

val tree_to_string : Tree.t -> string
(** Structure-only rendering of a tree. *)

val add_events : Buffer.t -> Event.t list -> unit
(** Append the rendering of an event stream to a buffer; lets generators
    build multi-megabyte documents without intermediate strings. *)
