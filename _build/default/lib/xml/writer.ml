let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attribute s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:true s;
  Buffer.contents buf

let add_event buf = function
  | Event.Start_element (name, atts) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape buf ~quot:true v;
        Buffer.add_char buf '"')
      atts;
    Buffer.add_char buf '>'
  | Event.End_element name ->
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  | Event.Text s -> escape buf ~quot:false s

let add_events buf events = List.iter (add_event buf) events

let events_to_string events =
  let buf = Buffer.create 1024 in
  add_events buf events;
  Buffer.contents buf

let tree_to_string t = events_to_string (Tree.to_events t)
