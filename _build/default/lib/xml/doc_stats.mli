(** Streaming document characteristics (the left half of the paper's Table 2:
    total size, number of nodes, average / maximum recursion level). *)

type t = {
  total_bytes : int;
  node_count : int;
  avg_recursion_level : float;
  max_recursion_level : int;
  distinct_labels : int;
  max_depth : int;
}

val of_string : string -> t
(** Single SAX pass; never materializes the tree. *)

val pp : Format.formatter -> t -> unit
