type t =
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string

let pp ppf = function
  | Start_element (n, atts) ->
    let pp_att ppf (k, v) = Format.fprintf ppf " %s=%S" k v in
    Format.fprintf ppf "<%s%a>" n (Format.pp_print_list pp_att) atts
  | End_element n -> Format.fprintf ppf "</%s>" n
  | Text s -> Format.fprintf ppf "%S" s

let equal a b =
  match a, b with
  | Start_element (n1, a1), Start_element (n2, a2) -> n1 = n2 && a1 = a2
  | End_element n1, End_element n2 -> n1 = n2
  | Text t1, Text t2 -> t1 = t2
  | (Start_element _ | End_element _ | Text _), _ -> false
