(** Interned element labels.

    Every hot data structure in the repository (XSEED kernel, path tree, NoK
    storage, TreeSketch partitions) identifies element names by a dense
    integer id obtained from a {!table}. Interning is per-corpus: a table is
    created once per document (or per family of documents sharing a schema)
    and threaded explicitly — there is no global state. *)

type t = int
(** A label id. Ids are dense, starting at 0, in order of first interning. *)

type table
(** A mutable bidirectional mapping between element names and label ids. *)

val create_table : unit -> table

val intern : table -> string -> t
(** [intern tbl name] returns the id for [name], allocating a fresh one on
    first sight. *)

val find_opt : table -> string -> t option
(** [find_opt tbl name] returns the id for [name] if it was interned. *)

val name : table -> t -> string
(** [name tbl id] is the element name of [id].
    @raise Invalid_argument if [id] was never allocated by [tbl]. *)

val count : table -> int
(** Number of distinct labels interned so far. *)

val names : table -> string list
(** All interned names in id order (id 0 first). Re-interning this list into
    a fresh table reproduces the same ids — used to persist structures whose
    serialized form contains raw label ids (e.g. HET hashes). *)

val pp : table -> Format.formatter -> t -> unit
