(* Stored root-first so prefix tests are direct. *)
type t = int array

let root = [| 1 |]

let child d i =
  if i < 1 then invalid_arg "Dewey.child: rank must be >= 1";
  let n = Array.length d in
  let e = Array.make (n + 1) i in
  Array.blit d 0 e 0 n;
  e

let parent d =
  let n = Array.length d in
  if n <= 1 then None else Some (Array.sub d 0 (n - 1))

let depth d = Array.length d

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let is_ancestor_or_self a d =
  let la = Array.length a in
  la <= Array.length d
  &&
  let rec go i = i >= la || (a.(i) = d.(i) && go (i + 1)) in
  go 0

let to_string d =
  let buf = Buffer.create (Array.length d * 3) in
  Array.iter (fun i -> Buffer.add_string buf (string_of_int i); Buffer.add_char buf '.') d;
  Buffer.contents buf

let of_list = function
  | [] -> invalid_arg "Dewey.of_list: empty"
  | l ->
    if List.exists (fun i -> i < 1) l then
      invalid_arg "Dewey.of_list: components must be >= 1";
    Array.of_list l

let to_list = Array.to_list

let pp ppf d = Format.pp_print_string ppf (to_string d)
