(** Dewey IDs: hierarchical node identifiers.

    The XSEED traveler (paper Algorithm 2) stamps every EPT event with the
    DeweyID of the synopsis path, and the matcher uses ancestor tests on
    those ids to clear partial matches. A DeweyID is the sequence of 1-based
    child ranks from the root; the root is [1]. *)

type t

val root : t
val child : t -> int -> t
(** [child d i] is the id of the [i]-th (1-based) child of [d]. *)

val parent : t -> t option
val depth : t -> int

val compare : t -> t -> int
(** Document order: prefix-before-extension, then lexicographic. *)

val equal : t -> t -> bool
val is_ancestor_or_self : t -> t -> bool
(** [is_ancestor_or_self a d] is true when [a] is [d] or an ancestor of it. *)

val to_string : t -> string
(** Paper style, e.g. ["1.3.3."]. *)

val of_list : int list -> t
(** @raise Invalid_argument on an empty list or non-positive component. *)

val to_list : t -> int list
val pp : Format.formatter -> t -> unit
