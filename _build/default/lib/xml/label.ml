type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create_table () =
  { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some id -> id
  | None ->
    let id = tbl.next in
    if id >= Array.length tbl.by_id then begin
      let bigger = Array.make (2 * Array.length tbl.by_id) "" in
      Array.blit tbl.by_id 0 bigger 0 id;
      tbl.by_id <- bigger
    end;
    tbl.by_id.(id) <- name;
    tbl.next <- id + 1;
    Hashtbl.add tbl.by_name name id;
    id

let find_opt tbl name = Hashtbl.find_opt tbl.by_name name

let name tbl id =
  if id < 0 || id >= tbl.next then
    invalid_arg (Printf.sprintf "Label.name: unknown id %d" id)
  else tbl.by_id.(id)

let count tbl = tbl.next

let names tbl = List.init tbl.next (fun id -> tbl.by_id.(id))

let pp tbl ppf id = Format.pp_print_string ppf (name tbl id)
