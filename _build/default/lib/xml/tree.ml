type node = { label : Label.t; children : node array }

type t = { root : node; table : Label.table; size : int }

let of_events ?table events =
  let table = match table with Some t -> t | None -> Label.create_table () in
  (* Stack of (label, reversed children built so far). *)
  let stack = ref [] in
  let roots = ref [] in
  let size = ref 0 in
  let handle = function
    | Event.Start_element (name, _) ->
      incr size;
      stack := (Label.intern table name, ref []) :: !stack
    | Event.End_element _ ->
      (match !stack with
       | [] -> invalid_arg "Tree.of_events: unbalanced events"
       | (label, kids) :: rest ->
         let node = { label; children = Array.of_list (List.rev !kids) } in
         stack := rest;
         (match rest with
          | [] -> roots := node :: !roots
          | (_, parent_kids) :: _ -> parent_kids := node :: !parent_kids))
    | Event.Text _ -> ()
  in
  List.iter handle events;
  if !stack <> [] then invalid_arg "Tree.of_events: unclosed element";
  match !roots with
  | [ root ] -> { root; table; size = !size }
  | [] -> invalid_arg "Tree.of_events: no root element"
  | _ -> invalid_arg "Tree.of_events: multiple roots"

let of_string ?table input = of_events ?table (Sax.events input)

let fold_events input ~init ~f = Sax.fold input ~init ~f

let node_count t = t.size

let rec depth_node node =
  Array.fold_left (fun acc child -> max acc (1 + depth_node child)) 1 node.children

let depth t = depth_node t.root

let label_counts t =
  let counts = Array.make (Label.count t.table) 0 in
  let rec go node =
    counts.(node.label) <- counts.(node.label) + 1;
    Array.iter go node.children
  in
  go t.root;
  let acc = ref [] in
  for id = Array.length counts - 1 downto 0 do
    if counts.(id) > 0 then acc := (id, counts.(id)) :: !acc
  done;
  !acc

let recursion_levels t =
  (* Descending into a node only raises the occurrence count of its own
     label, so the path recursion level is max(parent prl, occ(label) - 1). *)
  let occ = Array.make (Label.count t.table) 0 in
  let total = ref 0 and nodes = ref 0 and maximum = ref 0 in
  let rec go node prl_above =
    occ.(node.label) <- occ.(node.label) + 1;
    let prl = max prl_above (occ.(node.label) - 1) in
    total := !total + prl;
    incr nodes;
    if prl > !maximum then maximum := prl;
    Array.iter (fun child -> go child prl) node.children;
    occ.(node.label) <- occ.(node.label) - 1
  in
  go t.root 0;
  (float_of_int !total /. float_of_int !nodes, !maximum)

let iter_preorder t ~f =
  let rec go node depth =
    f node ~depth;
    Array.iter (fun child -> go child (depth + 1)) node.children
  in
  go t.root 0

let to_events t =
  let acc = ref [] in
  let rec go node =
    acc := Event.Start_element (Label.name t.table node.label, []) :: !acc;
    Array.iter go node.children;
    acc := Event.End_element (Label.name t.table node.label) :: !acc
  in
  go t.root;
  List.rev !acc

let equal_structure a b =
  let rec go na nb =
    String.equal (Label.name a.table na.label) (Label.name b.table nb.label)
    && Array.length na.children = Array.length nb.children
    && (let ok = ref true in
        Array.iteri (fun i ca -> if !ok then ok := go ca nb.children.(i)) na.children;
        !ok)
  in
  go a.root b.root

let distinct_rooted_paths t =
  (* Count path-tree nodes: group children of each path-tree node by label. *)
  let count = ref 0 in
  let rec go nodes =
    (* [nodes] is the set of tree nodes sharing one rooted label path. *)
    incr count;
    let by_label = Hashtbl.create 8 in
    List.iter
      (fun node ->
        Array.iter
          (fun child ->
            let existing =
              Option.value (Hashtbl.find_opt by_label child.label) ~default:[]
            in
            Hashtbl.replace by_label child.label (child :: existing))
          node.children)
      nodes;
    Hashtbl.iter (fun _ group -> go group) by_label
  in
  go [ t.root ];
  !count
