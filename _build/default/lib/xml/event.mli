(** SAX-style parse events.

    The XSEED kernel builder (paper Algorithm 1), the path-tree builder and
    the NoK storage builder all consume this event stream, so a document can
    be summarized in a single parse without materializing the tree. *)

type t =
  | Start_element of string * (string * string) list
      (** Opening tag: name and attributes in document order. *)
  | End_element of string  (** Closing tag (name repeated for checking). *)
  | Text of string  (** Character data (entity references resolved). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
