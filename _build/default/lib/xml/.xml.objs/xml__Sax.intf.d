lib/xml/sax.mli: Event
