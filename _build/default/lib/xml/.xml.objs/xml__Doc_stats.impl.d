lib/xml/doc_stats.ml: Array Event Format Label Sax String
