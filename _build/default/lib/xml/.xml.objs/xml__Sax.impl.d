lib/xml/sax.ml: Buffer Char Event Format List String
