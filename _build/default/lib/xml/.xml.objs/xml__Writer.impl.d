lib/xml/writer.ml: Buffer Event List String Tree
