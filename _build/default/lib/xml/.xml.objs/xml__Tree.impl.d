lib/xml/tree.ml: Array Event Hashtbl Label List Option Sax String
