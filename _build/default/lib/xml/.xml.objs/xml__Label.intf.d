lib/xml/label.mli: Format
