lib/xml/writer.mli: Buffer Event Tree
