lib/xml/event.ml: Format
