lib/xml/dewey.ml: Array Buffer Format Int List
