lib/xml/label.ml: Array Format Hashtbl List Printf
