lib/xml/tree.mli: Event Label
