lib/xml/event.mli: Format
