type t = {
  total_bytes : int;
  node_count : int;
  avg_recursion_level : float;
  max_recursion_level : int;
  distinct_labels : int;
  max_depth : int;
}

type acc = {
  table : Label.table;
  mutable occ : int array;  (* occurrences of each label on the open path *)
  mutable prl_stack : int list;  (* path recursion level per open ancestor *)
  mutable nodes : int;
  mutable rl_sum : int;
  mutable rl_max : int;
  mutable depth : int;
  mutable depth_max : int;
}

let of_string input =
  let a =
    { table = Label.create_table (); occ = Array.make 64 0; prl_stack = [];
      nodes = 0; rl_sum = 0; rl_max = 0; depth = 0; depth_max = 0 }
  in
  let handle () = function
    | Event.Start_element (name, _) ->
      let label = Label.intern a.table name in
      if label >= Array.length a.occ then begin
        let bigger = Array.make (2 * Array.length a.occ) 0 in
        Array.blit a.occ 0 bigger 0 (Array.length a.occ);
        a.occ <- bigger
      end;
      a.occ.(label) <- a.occ.(label) + 1;
      let above = match a.prl_stack with [] -> 0 | prl :: _ -> prl in
      let prl = max above (a.occ.(label) - 1) in
      a.prl_stack <- prl :: a.prl_stack;
      a.nodes <- a.nodes + 1;
      a.rl_sum <- a.rl_sum + prl;
      if prl > a.rl_max then a.rl_max <- prl;
      a.depth <- a.depth + 1;
      if a.depth > a.depth_max then a.depth_max <- a.depth
    | Event.End_element name ->
      (match Label.find_opt a.table name with
       | Some label -> a.occ.(label) <- a.occ.(label) - 1
       | None -> ());
      (match a.prl_stack with [] -> () | _ :: rest -> a.prl_stack <- rest);
      a.depth <- a.depth - 1
    | Event.Text _ -> ()
  in
  Sax.fold input ~init:() ~f:handle;
  {
    total_bytes = String.length input;
    node_count = a.nodes;
    avg_recursion_level =
      (if a.nodes = 0 then 0. else float_of_int a.rl_sum /. float_of_int a.nodes);
    max_recursion_level = a.rl_max;
    distinct_labels = Label.count a.table;
    max_depth = a.depth_max;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>total size: %d bytes@ nodes: %d@ rec. level: %.2f avg / %d max@ \
     labels: %d@ depth: %d@]"
    s.total_bytes s.node_count s.avg_recursion_level s.max_recursion_level
    s.distinct_labels s.max_depth
