(** In-memory structural XML tree.

    Cardinality estimation in the paper is purely structural, so the tree
    keeps element labels and parent-child edges only; attributes and text are
    consumed by the SAX layer and dropped here. Labels are interned in the
    document's {!Label.table}. *)

type node = { label : Label.t; children : node array }

type t = {
  root : node;
  table : Label.table;
  size : int;  (** total number of element nodes *)
}

val of_events : ?table:Label.table -> Event.t list -> t
(** Build a tree from a SAX event list. A fresh label table is created unless
    [table] is given (sharing a table across documents keeps ids aligned).
    @raise Invalid_argument if the events are not balanced. *)

val of_string : ?table:Label.table -> string -> t
(** Parse and build. @raise Sax.Malformed on bad input. *)

val fold_events : string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Re-export of {!Sax.fold}: summarize a document without materializing it. *)

val node_count : t -> int

val depth : t -> int
(** Length in nodes of the longest root-to-leaf path. *)

val label_counts : t -> (Label.t * int) list
(** Occurrences of each label, sorted by id. *)

val recursion_levels : t -> float * int
(** Average (over all nodes) and maximum node recursion level, as defined in
    the paper (Definition 1): the max count of any repeated label on the
    node's rooted path, minus 1. Matches Table 2's "avg/max rec. level". *)

val iter_preorder : t -> f:(node -> depth:int -> unit) -> unit

val to_events : t -> Event.t list
(** Structure-only event stream (no attributes or text). *)

val equal_structure : t -> t -> bool
(** True when both trees have the same shape and the same label {e names}
    (ids may differ when tables differ). *)

val distinct_rooted_paths : t -> int
(** Number of distinct rooted label paths, i.e. the node count of the
    document's path tree. *)
