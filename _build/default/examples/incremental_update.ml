(* Incremental synopsis maintenance (paper Section 3, "Synopsis update").

   When documents change, XSEED does not rebuild: the added or deleted
   subtree is replayed against the kernel with its insertion path as
   context, and the deltas merge in. This example inserts and deletes
   auction records in an XMark-like document and shows (a) the maintained
   kernel staying in lockstep with a from-scratch rebuild, and (b) the
   estimates tracking the data.

   Run with: dune exec examples/incremental_update.exe *)

let () =
  let doc = Datagen.Xmark.generate ~seed:99 ~items:30 () in
  let table = Xml.Label.create_table () in
  let kernel = Core.Builder.of_string ~table doc in
  let estimator = Core.Estimator.create kernel in
  let q = Xpath.Parser.parse "/site/open_auctions/open_auction/bidder" in

  Printf.printf "initial estimate of %s: %.1f\n\n"
    "/site/open_auctions/open_auction/bidder"
    (Core.Estimator.estimate estimator q);

  (* Insert 20 new auctions, each with three bidders. *)
  let new_auction i =
    Printf.sprintf
      "<open_auction id=\"new%d\"><initial>10.00</initial>%s<current>42</current>\
       <itemref item=\"item1\"/><seller person=\"person1\"/>\
       <quantity>1</quantity><type>Regular</type></open_auction>"
      i
      (String.concat ""
         (List.init 3 (fun _ ->
              "<bidder><date>01/01/2001</date><time>09:00:00</time>\
               <personref person=\"person2\"/><increase>3</increase></bidder>")))
  in
  let site = Xml.Label.intern table "site" in
  let open_auctions = Xml.Label.intern table "open_auctions" in
  let at = [ site; open_auctions ] in
  let inserted = List.init 20 new_auction in
  (* open_auctions already has open_auction children, so the connecting
     edge's parent count must not move. *)
  List.iter
    (fun sub ->
      Core.Builder.add_subtree ~parent_gains_label:false kernel ~at
        (Xml.Sax.events sub))
    inserted;
  Printf.printf "after inserting 20 auctions x 3 bidders: %.1f\n"
    (Core.Estimator.estimate estimator q);

  (* Cross-check against a from-scratch build of the edited document. *)
  let edited =
    let marker = "</open_auctions>" in
    let idx =
      let rec find i =
        if String.sub doc i (String.length marker) = marker then i else find (i + 1)
      in
      find 0
    in
    String.sub doc 0 idx ^ String.concat "" inserted
    ^ String.sub doc idx (String.length doc - idx)
  in
  let rebuilt = Core.Builder.of_string ~table:(Xml.Label.create_table ()) edited in
  Printf.printf "maintained kernel = rebuilt kernel: %b\n\n"
    (Core.Kernel.equal kernel rebuilt);

  (* Delete them again: the kernel returns to its original state. *)
  let original = Core.Builder.of_string ~table:(Xml.Label.create_table ()) doc in
  List.iter
    (fun sub ->
      Core.Builder.remove_subtree ~parent_loses_label:false kernel ~at
        (Xml.Sax.events sub))
    inserted;
  Printf.printf "after deleting them again: %.1f (kernel restored: %b)\n"
    (Core.Estimator.estimate estimator q)
    (Core.Kernel.equal kernel original)
