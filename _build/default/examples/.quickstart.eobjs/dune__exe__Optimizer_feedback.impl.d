examples/optimizer_feedback.ml: Core Datagen List Nok Pathtree Printf Stats String
