examples/incremental_update.mli:
