examples/memory_budget.ml: Core Datagen List Nok Pathtree Printf Stats String Xml Xpath
