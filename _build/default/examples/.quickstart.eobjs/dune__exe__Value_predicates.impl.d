examples/value_predicates.ml: Core Datagen List Nok Pathtree Printf Stats String Xpath
