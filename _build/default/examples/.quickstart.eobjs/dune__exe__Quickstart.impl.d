examples/quickstart.ml: Core Datagen Format List Nok Printf String Xpath
