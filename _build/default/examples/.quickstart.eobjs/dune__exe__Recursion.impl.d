examples/recursion.ml: Core Datagen List Nok Printf Treesketch Xml Xpath
