examples/recursion.mli:
