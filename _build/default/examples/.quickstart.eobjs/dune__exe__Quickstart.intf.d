examples/quickstart.mli:
