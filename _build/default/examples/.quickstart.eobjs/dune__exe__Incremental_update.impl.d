examples/incremental_update.ml: Core Datagen List Printf String Xml Xpath
