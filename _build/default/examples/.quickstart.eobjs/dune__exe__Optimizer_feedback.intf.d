examples/optimizer_feedback.mli:
