examples/value_predicates.mli:
