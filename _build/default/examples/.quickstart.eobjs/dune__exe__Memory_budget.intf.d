examples/memory_budget.mli:
