(* Value-based constraints (the paper's named future work, Section 1).

   The paper estimates structure only and points to value-synopsis work for
   the rest; this library implements that layer: per-(parent, child) and
   per-(element, attribute) distributions — equi-depth histograms over
   numeric text, exact top-k frequent strings — multiplied into the match
   probabilities exactly where structural selectivities go.

   Run with: dune exec examples/value_predicates.exe *)

let () =
  let doc = Datagen.Xmark.generate ~seed:12 ~items:120 () in
  Printf.printf "document: %d bytes (XMark-like auction site)\n\n"
    (String.length doc);

  (* Ground truth needs the values too: build the NoK storage with them. *)
  let storage = Nok.Storage.of_string ~with_values:true doc in
  let kernel = Core.Builder.of_string ~table:storage.table doc in
  let value_synopsis = Core.Value_synopsis.build storage in
  Printf.printf "value synopsis: %d (context, target) distributions, %d bytes\n\n"
    (Core.Value_synopsis.entry_count value_synopsis)
    (Core.Value_synopsis.size_in_bytes value_synopsis);

  let with_values = Core.Estimator.create ~values:value_synopsis kernel in
  let structural_only = Core.Estimator.create kernel in

  let queries =
    [ "//item[quantity=1]";
      "//item[quantity>=2]/location";
      "//item[payment='Creditcard']/name";
      "//open_auction[increase>10]";
      "//person/profile[age>40]";
      "//person[profile[age<=30]]/name";
      "//closed_auction[type='Regular']";
      "//item[@id='item3']";
      "//bidder[increase>5][time='12:00:00']" ]
  in
  Printf.printf "%-44s %8s %12s %12s\n" "query" "actual" "with values"
    "ignored";
  List.iter
    (fun q ->
      let path = Xpath.Parser.parse q in
      let actual = Nok.Eval.cardinality storage path in
      Printf.printf "%-44s %8d %12.1f %12.1f\n" q actual
        (Core.Estimator.estimate with_values path)
        (Core.Estimator.estimate structural_only path))
    queries;
  print_newline ();

  (* Aggregate over a random valued workload. *)
  let pt = Pathtree.Path_tree.of_string ~table:storage.table doc in
  let rng = Datagen.Rng.create ~seed:9 in
  let workload = Datagen.Workload.valued pt ~storage ~rng ~count:150 () in
  let summarize estimator =
    Stats.Metrics.summarize
      (List.map
         (fun q ->
           ( Core.Estimator.estimate estimator q,
             float_of_int (Nok.Eval.cardinality storage q) ))
         workload)
  in
  let v = summarize with_values and s = summarize structural_only in
  Printf.printf "random valued workload (%d queries):\n" (List.length workload);
  Printf.printf "  with value synopsis: RMSE %8.2f  NRMSE %7.2f%%\n" v.rmse
    (100.0 *. v.nrmse);
  Printf.printf "  predicates ignored:  RMSE %8.2f  NRMSE %7.2f%%\n" s.rmse
    (100.0 *. s.nrmse)
