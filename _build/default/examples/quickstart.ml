(* Quickstart: the paper's running example, end to end.

   Builds the XSEED kernel for the Figure 2(a) document, prints the kernel
   (Example 2), dumps the expanded path tree the traveler generates
   (Section 4), and walks through the cardinality estimation of Example 3 —
   then compares estimates against actual cardinalities for a few more
   query shapes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let doc = Datagen.Paper_example.document in
  print_endline "=== The paper's example document (Figure 2a) ===";
  print_endline doc;
  print_newline ();

  (* 1. Build the kernel: one SAX pass (Algorithm 1). *)
  let kernel = Core.Builder.of_string doc in
  print_endline "=== XSEED kernel (Figure 2b) ===";
  print_string (Core.Kernel.to_string kernel);
  Printf.printf "kernel size: %d bytes for a %d-byte document\n\n"
    (Core.Kernel.size_in_bytes kernel) (String.length doc);

  (* 2. The traveler expands the kernel into the EPT (Algorithm 2). *)
  print_endline "=== Expanded path tree (Section 4) ===";
  print_endline (Core.Traveler.ept_to_xml kernel);
  print_newline ();

  (* 3. Example 3: estimate /a/c/s/s/t. *)
  let estimator = Core.Estimator.create kernel in
  let storage = Nok.Storage.of_string doc in
  print_endline "=== Example 3: estimating /a/c/s/s/t ===";
  let prefixes = [ "/a"; "/a/c"; "/a/c/s"; "/a/c/s/s"; "/a/c/s/s/t" ] in
  Printf.printf "%-14s %12s %8s\n" "path" "estimated" "actual";
  List.iter
    (fun q ->
      let est = Core.Estimator.estimate_string estimator q in
      let actual = Nok.Eval.cardinality storage (Xpath.Parser.parse q) in
      Printf.printf "%-14s %12.2f %8d\n" q est actual)
    prefixes;
  print_newline ();

  (* 4. More query shapes: branching, descendant, recursive. *)
  print_endline "=== Estimates vs actuals across query shapes ===";
  Printf.printf "%-22s %-5s %12s %8s\n" "query" "kind" "estimated" "actual";
  List.iter
    (fun q ->
      let path = Xpath.Parser.parse q in
      let est = Core.Estimator.estimate estimator path in
      let actual = Nok.Eval.cardinality storage path in
      Printf.printf "%-22s %-5s %12.2f %8d\n" q
        (Xpath.Classify.shape_to_string (Xpath.Classify.shape path))
        est actual)
    [ "/a/c/s"; "/a/c[t]/s"; "/a/c/s[t]/p"; "//s"; "//s//s"; "//s//s//p";
      "//s[t]/p"; "/a/*"; "//*" ];
  print_newline ();

  (* 5. One-call facade with HET: simple paths become exact. *)
  let synopsis = Core.Synopsis.build doc in
  print_endline "=== With the HET (Section 5) ===";
  Format.printf "%a@." Core.Synopsis.pp synopsis;
  Printf.printf "estimate(/a/c/s[t]/p) with HET: %.2f (actual %d)\n"
    (Core.Synopsis.estimate synopsis "/a/c/s[t]/p")
    (Nok.Eval.cardinality storage (Xpath.Parser.parse "/a/c/s[t]/p"))
