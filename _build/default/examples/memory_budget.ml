(* Memory-budget adaptivity (the property Tables 2 and 3 exercise).

   XSEED's kernel is a fixed, tiny core; the HET is a ranked list of exact
   statistics that can be cut to any budget. This example builds the full
   synopsis for a DBLP-like corpus once, then sweeps the total memory budget
   and reports accuracy at each point - no reconstruction needed, unlike
   TreeSketch which must re-run its merge process per budget.

   It also demonstrates the paper's Figure 5 anomaly: with the default
   BSEL_THRESHOLD of 0.1, the hyper-edge for article[pages]/publisher is
   never built (bsel(pages) = 0.8 > 0.1), so that query keeps its large
   error no matter the budget; raising the threshold captures it.

   Run with: dune exec examples/memory_budget.exe *)

let () =
  let doc = Datagen.Dblp.generate ~seed:11 ~records:3000 () in
  Printf.printf "document: %d bytes\n" (String.length doc);

  (* Generous threshold so sibling correlations become HET candidates. *)
  let synopsis = Core.Synopsis.build ~bsel_threshold:0.95 doc in
  let kernel_bytes = Core.Synopsis.kernel_size_in_bytes synopsis in
  Printf.printf "kernel: %d bytes; full synopsis: %d bytes\n\n" kernel_bytes
    (Core.Synopsis.size_in_bytes synopsis);

  let storage = Nok.Storage.of_string doc in
  let path_tree = Pathtree.Path_tree.of_string doc in
  let rng = Datagen.Rng.create ~seed:3 in
  let workload =
    Datagen.Workload.all_simple_paths path_tree
    @ Datagen.Workload.branching path_tree ~rng ~count:150 ()
    @ Datagen.Workload.complex path_tree ~rng ~count:150 ()
  in
  let actuals =
    List.map (fun q -> (q, float_of_int (Nok.Eval.cardinality storage q))) workload
  in

  Printf.printf "%-14s %12s %10s %10s\n" "budget" "used bytes" "RMSE" "NRMSE";
  let sweep budget =
    Core.Synopsis.set_budget synopsis ~bytes:budget;
    let estimator = Core.Synopsis.estimator synopsis in
    let s =
      Stats.Metrics.summarize
        (List.map (fun (q, a) -> (Core.Estimator.estimate estimator q, a)) actuals)
    in
    Printf.printf "%10d B %12d %10.3f %9.2f%%\n" budget
      (Core.Synopsis.size_in_bytes synopsis)
      s.rmse (100.0 *. s.nrmse)
  in
  (* From "kernel only" up to "everything fits". *)
  List.iter sweep
    [ kernel_bytes; kernel_bytes + 64; kernel_bytes + 256; kernel_bytes + 1024;
      kernel_bytes + 4096; kernel_bytes + 65536 ];
  print_newline ();

  (* The Figure 5 anomaly, isolated. *)
  let anomaly = Xpath.Parser.parse "/dblp/article[pages]/publisher" in
  let actual = float_of_int (Nok.Eval.cardinality storage anomaly) in
  let kernel = Core.Synopsis.kernel synopsis in
  let table = Xml.Label.create_table () in
  ignore table;
  let kernel_only = Core.Estimator.create kernel in
  Core.Synopsis.set_budget synopsis ~bytes:(kernel_bytes + 65536);
  Printf.printf "the Figure 5 anomaly: /dblp/article[pages]/publisher (actual %.0f)\n"
    actual;
  Printf.printf "  kernel only (independence assumption): %.1f\n"
    (Core.Estimator.estimate kernel_only anomaly);
  Printf.printf "  with HET built at BSEL_THRESHOLD 0.95:  %.1f\n"
    (Core.Estimator.estimate (Core.Synopsis.estimator synopsis) anomaly);
  let strict = Core.Synopsis.build ~bsel_threshold:0.1 doc in
  Printf.printf
    "  with HET at the paper's default 0.1:    %.1f  <- bsel(pages)=0.8 > 0.1,\n\
    \     so the correlated hyper-edge is never built: the paper's Figure 5 case\n"
    (Core.Synopsis.estimate strict "/dblp/article[pages]/publisher")
