(* Recursion-aware estimation (the paper's headline differentiator).

   On a Treebank-like corpus: the XSEED kernel tracks per-recursion-level
   counts, so recursive queries such as //NP//NP//NP stay accurate, while a
   budget-constrained TreeSketch conflates recursion levels. Also shows the
   CARD_THRESHOLD trade-off of Section 6.4: higher threshold, smaller EPT,
   some accuracy loss.

   Run with: dune exec examples/recursion.exe *)

let () =
  let doc = Datagen.Treebank.generate ~seed:5 ~sentences:400 () in
  let stats = Xml.Doc_stats.of_string doc in
  Printf.printf
    "treebank-like corpus: %d bytes, %d nodes, recursion level %.2f avg / %d max\n\n"
    stats.total_bytes stats.node_count stats.avg_recursion_level
    stats.max_recursion_level;

  let storage = Nok.Storage.of_string doc in
  let kernel = Core.Builder.of_string doc in
  Printf.printf "XSEED kernel: %d bytes\n" (Core.Kernel.size_in_bytes kernel);

  let budget = Core.Kernel.size_in_bytes kernel in
  let sketch, ts_stats = Treesketch.Sketch.build ~budget_bytes:budget storage in
  Printf.printf
    "TreeSketch at the same budget: %d bytes (%d classes from %d, %d merges)\n\n"
    (Treesketch.Sketch.size_in_bytes sketch)
    (Treesketch.Sketch.class_count sketch)
    ts_stats.initial_classes ts_stats.merges;

  let estimator = Core.Estimator.create ~card_threshold:4.0 kernel in
  let queries =
    [ "//S"; "//S//S"; "//S//S//S"; "//NP//NP"; "//NP//NP//NP"; "//VP//VP";
      "//SBAR//S/NP"; "//S//VP//NN" ]
  in
  Printf.printf "%-16s %10s %12s %12s\n" "query" "actual" "XSEED" "TreeSketch";
  List.iter
    (fun q ->
      let path = Xpath.Parser.parse q in
      let actual = Nok.Eval.cardinality storage path in
      let xseed = Core.Estimator.estimate estimator path in
      let ts = Treesketch.Sketch.estimate ~max_depth:24 sketch path in
      Printf.printf "%-16s %10d %12.1f %12.1f\n" q actual xseed ts)
    queries;
  print_newline ();

  (* The CARD_THRESHOLD trade-off: EPT size vs accuracy on one query. *)
  print_endline "CARD_THRESHOLD trade-off (Section 6.4):";
  Printf.printf "%-12s %12s %16s\n" "threshold" "EPT nodes" "est //NP//NP";
  List.iter
    (fun threshold ->
      let traveler = Core.Traveler.create ~card_threshold:threshold kernel in
      let ept = Core.Matcher.materialize traveler in
      let est =
        Core.Matcher.estimate ~table:(Core.Kernel.table kernel) ept
          (Xpath.Query_tree.of_path (Xpath.Parser.parse "//NP//NP"))
      in
      Printf.printf "%-12.1f %12d %16.1f\n" threshold
        (Core.Matcher.node_count ept) est)
    [ 0.5; 2.0; 5.0; 20.0; 100.0 ];
  Printf.printf "\n(actual //NP//NP = %d; document has %d nodes)\n"
    (Nok.Eval.cardinality storage (Xpath.Parser.parse "//NP//NP"))
    stats.node_count
