(* Generator tests: determinism, well-formedness, and — crucially — that each
   corpus reproduces the structural profile of its Table 2 counterpart. *)

let test_rng_deterministic () =
  let a = Datagen.Rng.create ~seed:7 and b = Datagen.Rng.create ~seed:7 in
  let seq r = List.init 50 (fun _ -> Datagen.Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Datagen.Rng.create ~seed:8 in
  Alcotest.(check bool) "different seed different stream" true (seq a <> seq c)

let test_rng_split_independent () =
  let r = Datagen.Rng.create ~seed:1 in
  let s1 = Datagen.Rng.split r in
  let v1 = List.init 10 (fun _ -> Datagen.Rng.int s1 100) in
  (* Drawing from the parent must not change the child's future. *)
  let r' = Datagen.Rng.create ~seed:1 in
  let s1' = Datagen.Rng.split r' in
  ignore (Datagen.Rng.int r' 100 : int);
  let v1' = List.init 10 (fun _ -> Datagen.Rng.int s1' 100) in
  Alcotest.(check (list int)) "split stream unaffected" v1 v1'

let test_rng_bounds () =
  let r = Datagen.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Datagen.Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    let w = Datagen.Rng.int_in r (-3) 3 in
    Alcotest.(check bool) "int_in range" true (w >= -3 && w <= 3);
    let f = Datagen.Rng.float r in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Datagen.Rng.int r 0 : int))

let test_rng_choose_weighted () =
  let r = Datagen.Rng.create ~seed:5 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let k = Datagen.Rng.choose_weighted r [| ("a", 0.9); ("b", 0.1) |] in
    Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
  done;
  let a = Hashtbl.find counts "a" in
  Alcotest.(check bool) "weights respected" true (a > 8500 && a < 9500)

let stats_of doc = Xml.Doc_stats.of_string doc

let test_dblp_profile () =
  let doc = Datagen.Dblp.generate ~records:300 () in
  let s = stats_of doc in
  Alcotest.(check int) "non-recursive" 0 s.max_recursion_level;
  Alcotest.(check bool) "flat" true (s.max_depth <= 4);
  Alcotest.(check bool) "enough nodes" true (s.node_count > 2000);
  (* The engineered depth-3 ancestor correlation (cite/label skew). *)
  let st0 = Nok.Storage.of_string doc in
  let c q = Nok.Eval.cardinality st0 (Xpath.Parser.parse q) in
  let art_label =
    float_of_int (c "/dblp/article/cite[label]")
    /. float_of_int (max 1 (c "/dblp/article/cite"))
  in
  let inp_label =
    float_of_int (c "/dblp/inproceedings/cite[label]")
    /. float_of_int (max 1 (c "/dblp/inproceedings/cite"))
  in
  Alcotest.(check bool) "cite/label skew by record type" true
    (art_label > 0.6 && inp_label < 0.2);
  (* The engineered correlation: pages is common, publisher-under-pages rare. *)
  let st = Nok.Storage.of_string doc in
  let card q = Nok.Eval.cardinality st (Xpath.Parser.parse q) in
  let articles = card "/dblp/article" in
  let with_pages = card "/dblp/article[pages]" in
  let both = card "/dblp/article[pages][publisher]" in
  Alcotest.(check bool) "bsel(pages) ~ 0.8" true
    (let b = float_of_int with_pages /. float_of_int articles in
     b > 0.7 && b < 0.9);
  Alcotest.(check bool) "publisher rare given pages" true
    (float_of_int both /. float_of_int with_pages < 0.15)

let test_dblp_deterministic () =
  Alcotest.(check string) "same seed"
    (Datagen.Dblp.generate ~seed:9 ~records:50 ())
    (Datagen.Dblp.generate ~seed:9 ~records:50 ())

let test_xmark_profile () =
  let doc = Datagen.Xmark.generate ~items:60 () in
  let s = stats_of doc in
  Alcotest.(check int) "max recursion 1" 1 s.max_recursion_level;
  Alcotest.(check bool) "avg recursion small" true (s.avg_recursion_level < 0.15);
  Alcotest.(check bool) "schema-rich" true (s.distinct_labels > 50);
  (* The paper's sample query shape must be satisfiable. *)
  let st = Nok.Storage.of_string doc in
  let n =
    Nok.Eval.cardinality st
      (Xpath.Parser.parse "//regions/australia/item[shipping]/location")
  in
  Alcotest.(check bool) "sample CP query non-empty" true (n > 0)

let test_xmark_scales () =
  let small = String.length (Datagen.Xmark.generate ~items:20 ()) in
  let big = String.length (Datagen.Xmark.generate ~items:200 ()) in
  let ratio = float_of_int big /. float_of_int small in
  Alcotest.(check bool)
    (Printf.sprintf "10x items -> ~10x bytes (ratio %.1f)" ratio)
    true
    (ratio > 6.0 && ratio < 14.0)

let test_treebank_profile () =
  let doc = Datagen.Treebank.generate ~sentences:400 () in
  let s = stats_of doc in
  Alcotest.(check bool)
    (Printf.sprintf "avg recursion ~1.3 (got %.2f)" s.avg_recursion_level)
    true
    (s.avg_recursion_level > 0.7 && s.avg_recursion_level < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "max recursion 5-10 (got %d)" s.max_recursion_level)
    true
    (s.max_recursion_level >= 5 && s.max_recursion_level <= 10);
  (* Structure-rich: many distinct rooted paths per node. *)
  let pt = Pathtree.Path_tree.of_string doc in
  Alcotest.(check bool) "path-rich" true
    (Pathtree.Path_tree.size pt > s.node_count / 10)

let test_treebank_max_recursion_respected () =
  let doc = Datagen.Treebank.generate ~max_recursion:3 ~sentences:200 () in
  let s = stats_of doc in
  Alcotest.(check bool) "cap respected" true (s.max_recursion_level <= 3)

let test_all_generators_well_formed () =
  (* Parsing raises on malformed output; also every document round-trips
     through the tree. *)
  List.iter
    (fun doc ->
      let t = Xml.Tree.of_string doc in
      Alcotest.(check bool) "non-empty" true (Xml.Tree.node_count t > 10))
    [ Datagen.Dblp.generate ~records:30 ();
      Datagen.Xmark.generate ~items:10 ();
      Datagen.Treebank.generate ~sentences:20 ();
      Datagen.Paper_example.document ]

(* ------------------------------------------------------------------ *)
(* Workload generation *)

let xmark_pt =
  lazy (Pathtree.Path_tree.of_string (Datagen.Xmark.generate ~items:40 ()))

let test_workload_sp () =
  let pt = Lazy.force xmark_pt in
  let sp = Datagen.Workload.all_simple_paths pt in
  Alcotest.(check int) "one SP query per path" (Pathtree.Path_tree.size pt)
    (List.length sp);
  List.iter
    (fun q ->
      Alcotest.(check bool) (Xpath.Ast.to_string q) true
        (Xpath.Classify.shape q = Xpath.Classify.Simple))
    sp

let test_workload_bp () =
  let pt = Lazy.force xmark_pt in
  let rng = Datagen.Rng.create ~seed:11 in
  let bp = Datagen.Workload.branching pt ~rng ~count:200 () in
  Alcotest.(check bool) "got queries" true (List.length bp >= 150);
  List.iter
    (fun q ->
      let shape = Xpath.Classify.shape q in
      Alcotest.(check bool)
        (Xpath.Ast.to_string q)
        true
        (shape = Xpath.Classify.Simple || shape = Xpath.Classify.Branching);
      Alcotest.(check bool) "mbp 1" true (Xpath.Ast.max_predicates_per_step q <= 1))
    bp;
  (* A healthy fraction must actually branch. *)
  let branching =
    List.length (List.filter (fun q -> Xpath.Ast.predicate_count q > 0) bp)
  in
  Alcotest.(check bool) "some branch" true (branching > List.length bp / 4)

let test_workload_bp_mbp () =
  let pt = Lazy.force xmark_pt in
  let rng = Datagen.Rng.create ~seed:12 in
  let bp2 = Datagen.Workload.branching pt ~rng ~count:200 ~mbp:2 () in
  Alcotest.(check bool) "2BP within bound" true
    (List.for_all (fun q -> Xpath.Ast.max_predicates_per_step q <= 2) bp2);
  Alcotest.(check bool) "some have 2 predicates" true
    (List.exists (fun q -> Xpath.Ast.max_predicates_per_step q = 2) bp2)

let test_workload_cp () =
  let pt = Lazy.force xmark_pt in
  let rng = Datagen.Rng.create ~seed:13 in
  let cp = Datagen.Workload.complex pt ~rng ~count:200 () in
  let complex =
    List.length
      (List.filter (fun q -> Xpath.Classify.shape q = Xpath.Classify.Complex) cp)
  in
  Alcotest.(check bool) "mostly complex" true (complex > List.length cp / 2)

let test_workload_nonempty_results () =
  (* Workload queries are grounded in the path tree, so most should return
     results on their source document. *)
  let doc = Datagen.Xmark.generate ~items:40 () in
  let pt = Pathtree.Path_tree.of_string doc in
  let st = Nok.Storage.of_string doc in
  let rng = Datagen.Rng.create ~seed:14 in
  let qs =
    Datagen.Workload.branching pt ~rng ~count:100 ()
    @ Datagen.Workload.complex pt ~rng ~count:100 ()
  in
  let nonempty =
    List.length (List.filter (fun q -> Nok.Eval.cardinality st q > 0) qs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mostly non-empty (%d/%d)" nonempty (List.length qs))
    true
    (nonempty * 2 > List.length qs)

let test_workload_deterministic () =
  let pt = Lazy.force xmark_pt in
  let q1 =
    Datagen.Workload.branching pt ~rng:(Datagen.Rng.create ~seed:5) ~count:50 ()
  in
  let q2 =
    Datagen.Workload.branching pt ~rng:(Datagen.Rng.create ~seed:5) ~count:50 ()
  in
  Alcotest.(check (list string)) "same seed same workload"
    (List.map Xpath.Ast.to_string q1)
    (List.map Xpath.Ast.to_string q2)

let () =
  Alcotest.run "datagen"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose_weighted;
        ] );
      ( "corpora",
        [
          Alcotest.test_case "dblp profile" `Quick test_dblp_profile;
          Alcotest.test_case "dblp deterministic" `Quick test_dblp_deterministic;
          Alcotest.test_case "xmark profile" `Quick test_xmark_profile;
          Alcotest.test_case "xmark scaling" `Quick test_xmark_scales;
          Alcotest.test_case "treebank profile" `Quick test_treebank_profile;
          Alcotest.test_case "treebank recursion cap" `Quick
            test_treebank_max_recursion_respected;
          Alcotest.test_case "well-formedness" `Quick test_all_generators_well_formed;
        ] );
      ( "workload",
        [
          Alcotest.test_case "all SP" `Quick test_workload_sp;
          Alcotest.test_case "BP" `Quick test_workload_bp;
          Alcotest.test_case "BP mbp" `Quick test_workload_bp_mbp;
          Alcotest.test_case "CP" `Quick test_workload_cp;
          Alcotest.test_case "non-empty results" `Quick test_workload_nonempty_results;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        ] );
    ]
