(* Tests for the XML substrate: labels, SAX parser, tree, Dewey ids, writer,
   streaming document statistics. *)

let ev_start name = Xml.Event.Start_element (name, [])
let ev_end name = Xml.Event.End_element name

let check_events msg input expected =
  Alcotest.(check (list (testable Xml.Event.pp Xml.Event.equal)))
    msg expected (Xml.Sax.events input)

let check_malformed msg input =
  match Xml.Sax.events input with
  | _ -> Alcotest.failf "%s: expected Malformed on %S" msg input
  | exception Xml.Sax.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Label interning *)

let test_label_intern () =
  let tbl = Xml.Label.create_table () in
  let a = Xml.Label.intern tbl "a" in
  let b = Xml.Label.intern tbl "b" in
  let a' = Xml.Label.intern tbl "a" in
  Alcotest.(check int) "same name same id" a a';
  Alcotest.(check bool) "distinct names distinct ids" true (a <> b);
  Alcotest.(check string) "name round-trip" "b" (Xml.Label.name tbl b);
  Alcotest.(check int) "count" 2 (Xml.Label.count tbl)

let test_label_growth () =
  let tbl = Xml.Label.create_table () in
  for i = 0 to 499 do
    let id = Xml.Label.intern tbl (Printf.sprintf "tag%d" i) in
    Alcotest.(check int) "dense ids" i id
  done;
  Alcotest.(check string) "late name lookup" "tag321" (Xml.Label.name tbl 321);
  Alcotest.(check int) "count after growth" 500 (Xml.Label.count tbl)

let test_label_unknown_id () =
  let tbl = Xml.Label.create_table () in
  ignore (Xml.Label.intern tbl "only");
  Alcotest.check_raises "unknown id" (Invalid_argument "Label.name: unknown id 7")
    (fun () -> ignore (Xml.Label.name tbl 7))

let test_label_names_order () =
  let tbl = Xml.Label.create_table () in
  List.iter (fun n -> ignore (Xml.Label.intern tbl n : int)) [ "z"; "a"; "m" ];
  Alcotest.(check (list string)) "names in id order" [ "z"; "a"; "m" ]
    (Xml.Label.names tbl);
  (* Re-interning reproduces the ids. *)
  let tbl2 = Xml.Label.create_table () in
  List.iter (fun n -> ignore (Xml.Label.intern tbl2 n : int)) (Xml.Label.names tbl);
  Alcotest.(check (option int)) "ids reproduced" (Xml.Label.find_opt tbl "m")
    (Xml.Label.find_opt tbl2 "m")

let test_label_find_opt () =
  let tbl = Xml.Label.create_table () in
  let x = Xml.Label.intern tbl "x" in
  Alcotest.(check (option int)) "present" (Some x) (Xml.Label.find_opt tbl "x");
  Alcotest.(check (option int)) "absent" None (Xml.Label.find_opt tbl "y")

(* ------------------------------------------------------------------ *)
(* SAX parser *)

let test_sax_simple () =
  check_events "one element" "<a></a>" [ ev_start "a"; ev_end "a" ]

let test_sax_nested () =
  check_events "nesting" "<a><b><c/></b></a>"
    [ ev_start "a"; ev_start "b"; ev_start "c"; ev_end "c"; ev_end "b"; ev_end "a" ]

let test_sax_self_closing () =
  check_events "self closing with attrs" {|<a x="1" y="2"/>|}
    [ Xml.Event.Start_element ("a", [ ("x", "1"); ("y", "2") ]); ev_end "a" ]

let test_sax_text () =
  check_events "text node" "<a>hello</a>"
    [ ev_start "a"; Xml.Event.Text "hello"; ev_end "a" ]

let test_sax_whitespace_only_text_dropped () =
  check_events "inter-element whitespace dropped" "<a>\n  <b/>\n</a>"
    [ ev_start "a"; ev_start "b"; ev_end "b"; ev_end "a" ]

let test_sax_entities () =
  check_events "predefined entities" "<a>x &amp; y &lt;z&gt; &quot;q&quot; &apos;s&apos;</a>"
    [ ev_start "a"; Xml.Event.Text "x & y <z> \"q\" 's'"; ev_end "a" ]

let test_sax_char_ref_out_of_range () =
  check_malformed "codepoint beyond Unicode" "<a>&#x110000;</a>";
  check_malformed "negative-ish reference" "<a>&#xZZ;</a>"

let test_sax_char_refs () =
  check_events "numeric character references" "<a>&#65;&#x42;</a>"
    [ ev_start "a"; Xml.Event.Text "AB"; ev_end "a" ];
  check_events "multibyte char ref" "<a>&#233;</a>"
    [ ev_start "a"; Xml.Event.Text "\xc3\xa9"; ev_end "a" ]

let test_sax_attribute_entities () =
  check_events "entities in attributes" {|<a t="a&amp;b"/>|}
    [ Xml.Event.Start_element ("a", [ ("t", "a&b") ]); ev_end "a" ]

let test_sax_comment () =
  check_events "comments skipped" "<a><!-- hi --><b/><!-- > tricky --></a>"
    [ ev_start "a"; ev_start "b"; ev_end "b"; ev_end "a" ]

let test_sax_pi () =
  check_events "processing instructions skipped"
    "<?xml version=\"1.0\"?><a><?target data?></a>"
    [ ev_start "a"; ev_end "a" ]

let test_sax_doctype () =
  check_events "doctype with internal subset skipped"
    "<!DOCTYPE a [ <!ELEMENT a (b*)> <!ENTITY x \"y>\"> ]><a/>"
    [ ev_start "a"; ev_end "a" ]

let test_sax_cdata () =
  check_events "cdata preserved verbatim" "<a><![CDATA[<not> &amp; markup]]></a>"
    [ ev_start "a"; Xml.Event.Text "<not> &amp; markup"; ev_end "a" ]

let test_sax_malformed () =
  check_malformed "mismatched close" "<a><b></a></b>";
  check_malformed "unclosed" "<a><b>";
  check_malformed "double root" "<a/><b/>";
  check_malformed "no root" "   ";
  check_malformed "junk after root" "<a/>text";
  check_malformed "bad entity" "<a>&unknown;</a>";
  check_malformed "lt in attribute" "<a x=\"<\"/>";
  check_malformed "unterminated comment" "<a><!-- never closed</a>";
  check_malformed "unterminated cdata" "<a><![CDATA[x</a>"

let test_sax_deep_nesting () =
  (* The parser must not be recursive in document depth. *)
  let depth = 200_000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do Buffer.add_string buf "<d>" done;
  for _ = 1 to depth do Buffer.add_string buf "</d>" done;
  let count =
    Xml.Sax.fold (Buffer.contents buf) ~init:0 ~f:(fun n _ -> n + 1)
  in
  Alcotest.(check int) "event count" (2 * depth) count

(* ------------------------------------------------------------------ *)
(* Tree *)

let paper_example_xml = Datagen.Paper_example.document

let test_tree_counts () =
  let t = Xml.Tree.of_string paper_example_xml in
  Alcotest.(check int) "node count" 36 (Xml.Tree.node_count t);
  let counts =
    List.map
      (fun (id, n) -> (Xml.Label.name t.table id, n))
      (Xml.Tree.label_counts t)
  in
  Alcotest.(check int) "a count" 1 (List.assoc "a" counts);
  Alcotest.(check int) "c count" 2 (List.assoc "c" counts);
  Alcotest.(check int) "s count" 9 (List.assoc "s" counts);
  Alcotest.(check int) "t count" 6 (List.assoc "t" counts);
  Alcotest.(check int) "u count" 1 (List.assoc "u" counts);
  Alcotest.(check int) "p count" 17 (List.assoc "p" counts)

let test_tree_recursion_levels () =
  let t = Xml.Tree.of_string paper_example_xml in
  let _avg, max_rl = Xml.Tree.recursion_levels t in
  Alcotest.(check int) "max recursion level (three nested s)" 2 max_rl;
  let flat = Xml.Tree.of_string "<a><b/><c/></a>" in
  let avg, max_rl = Xml.Tree.recursion_levels flat in
  Alcotest.(check int) "flat doc max rl" 0 max_rl;
  Alcotest.(check (float 0.0)) "flat doc avg rl" 0.0 avg

let test_tree_depth () =
  let t = Xml.Tree.of_string "<a><b><c><d/></c></b><e/></a>" in
  Alcotest.(check int) "depth" 4 (Xml.Tree.depth t)

let test_tree_round_trip () =
  let t = Xml.Tree.of_string paper_example_xml in
  let again = Xml.Tree.of_string (Xml.Writer.tree_to_string t) in
  Alcotest.(check bool) "structure round-trips" true
    (Xml.Tree.equal_structure t again)

let test_tree_rejects_unbalanced () =
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Tree.of_events: unbalanced events") (fun () ->
      ignore (Xml.Tree.of_events [ ev_end "a" ]))

let test_tree_shared_table () =
  let table = Xml.Label.create_table () in
  let t1 = Xml.Tree.of_string ~table "<a><b/></a>" in
  let t2 = Xml.Tree.of_string ~table "<b><a/></b>" in
  Alcotest.(check int) "ids aligned" t1.root.label t2.root.children.(0).label

let test_distinct_rooted_paths () =
  let t = Xml.Tree.of_string paper_example_xml in
  (* Paths: a, a/t, a/u, a/c, a/c/t, a/c/p, a/c/s, a/c/s/t, a/c/s/p, a/c/s/s,
     a/c/s/s/t, a/c/s/s/p, a/c/s/s/s, a/c/s/s/s/p. *)
  Alcotest.(check int) "path tree size" 14 (Xml.Tree.distinct_rooted_paths t)

(* ------------------------------------------------------------------ *)
(* Dewey ids *)

let test_dewey_basics () =
  let d = Xml.Dewey.(child (child root 3) 1) in
  Alcotest.(check string) "to_string" "1.3.1." (Xml.Dewey.to_string d);
  Alcotest.(check int) "depth" 3 (Xml.Dewey.depth d);
  Alcotest.(check (option string)) "parent" (Some "1.3.")
    (Option.map Xml.Dewey.to_string (Xml.Dewey.parent d));
  Alcotest.(check (option string)) "root parent" None
    (Option.map Xml.Dewey.to_string (Xml.Dewey.parent Xml.Dewey.root))

let test_dewey_order () =
  let open Xml.Dewey in
  let d1 = of_list [ 1; 2 ] and d2 = of_list [ 1; 2; 1 ] and d3 = of_list [ 1; 3 ] in
  Alcotest.(check bool) "prefix first" true (compare d1 d2 < 0);
  Alcotest.(check bool) "sibling order" true (compare d2 d3 < 0);
  Alcotest.(check bool) "equal" true (equal d1 (of_list [ 1; 2 ]))

let test_dewey_ancestor () =
  let open Xml.Dewey in
  Alcotest.(check bool) "ancestor" true
    (is_ancestor_or_self (of_list [ 1; 2 ]) (of_list [ 1; 2; 5; 1 ]));
  Alcotest.(check bool) "self" true
    (is_ancestor_or_self (of_list [ 1; 2 ]) (of_list [ 1; 2 ]));
  Alcotest.(check bool) "not ancestor" false
    (is_ancestor_or_self (of_list [ 1; 2 ]) (of_list [ 1; 3; 2 ]));
  Alcotest.(check bool) "descendant is not ancestor" false
    (is_ancestor_or_self (of_list [ 1; 2; 1 ]) (of_list [ 1; 2 ]))

let test_dewey_of_list_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Dewey.of_list: empty")
    (fun () -> ignore (Xml.Dewey.of_list []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Dewey.of_list: components must be >= 1") (fun () ->
      ignore (Xml.Dewey.of_list [ 1; 0 ]))

(* ------------------------------------------------------------------ *)
(* Writer *)

let test_writer_escapes () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;d" (Xml.Writer.escape_text "a&b<c>d");
  Alcotest.(check string) "attribute" "&quot;x&amp;y&quot;"
    (Xml.Writer.escape_attribute "\"x&y\"")

let test_writer_round_trip_with_text () =
  let events =
    [ Xml.Event.Start_element ("a", [ ("k", "v&w") ]);
      Xml.Event.Text "x < y";
      ev_start "b"; ev_end "b";
      ev_end "a" ]
  in
  let rendered = Xml.Writer.events_to_string events in
  Alcotest.(check (list (testable Xml.Event.pp Xml.Event.equal)))
    "writer/parser round trip" events (Xml.Sax.events rendered)

(* ------------------------------------------------------------------ *)
(* Doc stats *)

let test_doc_stats () =
  let s = Xml.Doc_stats.of_string paper_example_xml in
  Alcotest.(check int) "nodes" 36 s.node_count;
  Alcotest.(check int) "max rl" 2 s.max_recursion_level;
  Alcotest.(check int) "labels" 6 s.distinct_labels;
  Alcotest.(check int) "bytes" (String.length paper_example_xml) s.total_bytes;
  Alcotest.(check int) "depth" 6 s.max_depth

let test_doc_stats_matches_tree () =
  let t = Xml.Tree.of_string paper_example_xml in
  let s = Xml.Doc_stats.of_string paper_example_xml in
  let avg_t, max_t = Xml.Tree.recursion_levels t in
  Alcotest.(check (float 1e-9)) "avg rl agrees" avg_t s.avg_recursion_level;
  Alcotest.(check int) "max rl agrees" max_t s.max_recursion_level;
  Alcotest.(check int) "node count agrees" (Xml.Tree.node_count t) s.node_count

(* ------------------------------------------------------------------ *)
(* Property tests *)

let gen_tree_events =
  (* Random small structural documents over a few labels. *)
  let open QCheck in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let rec gen_node depth rand =
    let label = labels.(Gen.int_bound (Array.length labels - 1) rand) in
    let n_children =
      if depth >= 4 then 0 else Gen.int_bound 3 rand
    in
    let children = List.init n_children (fun _ -> gen_node (depth + 1) rand) in
    ev_start label :: List.concat children @ [ ev_end label ]
  in
  make ~print:(fun evs -> Xml.Writer.events_to_string evs) (gen_node 0)

let prop_parse_write_round_trip =
  QCheck.Test.make ~count:200 ~name:"parse (write events) = events" gen_tree_events
    (fun events ->
      Xml.Sax.events (Xml.Writer.events_to_string events) = events)

let prop_tree_round_trip =
  QCheck.Test.make ~count:200 ~name:"tree of_events/to_events round trip"
    gen_tree_events (fun events ->
      let t = Xml.Tree.of_events events in
      Xml.Tree.to_events t = events)

let prop_node_count =
  QCheck.Test.make ~count:200 ~name:"node_count = number of start events"
    gen_tree_events (fun events ->
      let starts =
        List.length
          (List.filter (function Xml.Event.Start_element _ -> true | _ -> false) events)
      in
      Xml.Tree.node_count (Xml.Tree.of_events events) = starts)

let prop_dewey_compare_total_order =
  let open QCheck in
  let gen_dewey =
    make
      ~print:(fun l -> String.concat "." (List.map string_of_int l))
      Gen.(list_size (int_range 1 5) (int_range 1 4))
  in
  Test.make ~count:300 ~name:"dewey compare antisymmetric" (pair gen_dewey gen_dewey)
    (fun (l1, l2) ->
      let d1 = Xml.Dewey.of_list l1 and d2 = Xml.Dewey.of_list l2 in
      Xml.Dewey.compare d1 d2 = -Xml.Dewey.compare d2 d1)

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_parse_write_round_trip; prop_tree_round_trip; prop_node_count;
      prop_dewey_compare_total_order ]

let () =
  Alcotest.run "xml"
    [
      ( "label",
        [
          Alcotest.test_case "intern" `Quick test_label_intern;
          Alcotest.test_case "growth" `Quick test_label_growth;
          Alcotest.test_case "unknown id" `Quick test_label_unknown_id;
          Alcotest.test_case "find_opt" `Quick test_label_find_opt;
          Alcotest.test_case "names order" `Quick test_label_names_order;
        ] );
      ( "sax",
        [
          Alcotest.test_case "simple" `Quick test_sax_simple;
          Alcotest.test_case "nested" `Quick test_sax_nested;
          Alcotest.test_case "self closing" `Quick test_sax_self_closing;
          Alcotest.test_case "text" `Quick test_sax_text;
          Alcotest.test_case "whitespace dropped" `Quick
            test_sax_whitespace_only_text_dropped;
          Alcotest.test_case "entities" `Quick test_sax_entities;
          Alcotest.test_case "char refs" `Quick test_sax_char_refs;
          Alcotest.test_case "char ref out of range" `Quick
            test_sax_char_ref_out_of_range;
          Alcotest.test_case "attribute entities" `Quick test_sax_attribute_entities;
          Alcotest.test_case "comments" `Quick test_sax_comment;
          Alcotest.test_case "processing instructions" `Quick test_sax_pi;
          Alcotest.test_case "doctype" `Quick test_sax_doctype;
          Alcotest.test_case "cdata" `Quick test_sax_cdata;
          Alcotest.test_case "malformed inputs" `Quick test_sax_malformed;
          Alcotest.test_case "deep nesting" `Quick test_sax_deep_nesting;
        ] );
      ( "tree",
        [
          Alcotest.test_case "label counts" `Quick test_tree_counts;
          Alcotest.test_case "recursion levels" `Quick test_tree_recursion_levels;
          Alcotest.test_case "depth" `Quick test_tree_depth;
          Alcotest.test_case "round trip" `Quick test_tree_round_trip;
          Alcotest.test_case "unbalanced rejected" `Quick test_tree_rejects_unbalanced;
          Alcotest.test_case "shared label table" `Quick test_tree_shared_table;
          Alcotest.test_case "distinct rooted paths" `Quick test_distinct_rooted_paths;
        ] );
      ( "dewey",
        [
          Alcotest.test_case "basics" `Quick test_dewey_basics;
          Alcotest.test_case "document order" `Quick test_dewey_order;
          Alcotest.test_case "ancestor tests" `Quick test_dewey_ancestor;
          Alcotest.test_case "of_list validation" `Quick test_dewey_of_list_invalid;
        ] );
      ( "writer",
        [
          Alcotest.test_case "escaping" `Quick test_writer_escapes;
          Alcotest.test_case "round trip with text" `Quick
            test_writer_round_trip_with_text;
        ] );
      ( "doc_stats",
        [
          Alcotest.test_case "paper example" `Quick test_doc_stats;
          Alcotest.test_case "agrees with tree" `Quick test_doc_stats_matches_tree;
        ] );
      ("properties", props);
    ]
