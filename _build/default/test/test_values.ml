(* Value-predicate extension tests: parsing, NoK evaluation with values,
   histogram selectivities, and end-to-end estimation. *)

open Xpath

let parse = Parser.parse

let check_parse_error input =
  match Parser.parse input with
  | p -> Alcotest.failf "expected error on %S, parsed %s" input (Ast.to_string p)
  | exception Parser.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_parse_value_predicates () =
  let q = parse "/shop/item[price>9.5]/name" in
  Alcotest.(check int) "one value predicate" 1 (Ast.value_predicate_count q);
  Alcotest.(check bool) "flagged" true (Ast.has_value_predicates q);
  let q = parse "/a[@id='x42']/b" in
  (match q with
   | { Ast.value_predicates = [ { target = Ast.Attribute "id"; cmp = Ast.Eq;
                                  literal = Ast.Text "x42" } ]; _ } :: _ -> ()
   | _ -> Alcotest.fail "attribute predicate shape");
  let q = parse "//item[quantity<=3][payment='Creditcard']" in
  Alcotest.(check int) "two value predicates" 2 (Ast.value_predicate_count q)

let test_parse_value_round_trips () =
  List.iter
    (fun q -> Alcotest.(check string) q q (Ast.to_string (parse q)))
    [ "/shop/item[price>9.5]/name"; "/a[@id='x42']/b"; "//item[quantity<=3]";
      "/a/b[c!=7]"; "/a/b[c=-4]"; "//r[v>=10][w<20]"; "/a/b[t='hi there']";
      "/a[b[c=1]/d]/e" ]

let test_parse_mixed_qualifiers () =
  (* Structural and value predicates on the same step. *)
  let q = parse "/dblp/article[author][year>=2000]/title" in
  Alcotest.(check int) "structural" 1 (Ast.predicate_count q);
  Alcotest.(check int) "value" 1 (Ast.value_predicate_count q);
  Alcotest.check (Alcotest.testable Ast.pp Ast.equal) "strip"
    (parse "/dblp/article[author]/title")
    (Ast.strip_value_predicates q)

let test_parse_value_errors () =
  List.iter check_parse_error
    [ "/a[@id]"; (* attribute without comparison *)
      "/a[b<'x']"; (* ordered comparison on a string *)
      "/a[b=]"; "/a[b='unterminated]"; "/a[@='v']" ]

(* ------------------------------------------------------------------ *)
(* NoK storage and evaluation with values *)

let shop_doc =
  "<shop>\
   <item><name>anvil</name><price>10</price><qty>3</qty></item>\
   <item><name>rope</name><price>4.5</price><qty>10</qty></item>\
   <item><name>anvil</name><price>25</price><qty>1</qty></item>\
   <item id=\"special\"><name>tnt</name><price>99</price></item>\
   <item><name>rope</name><price>6</price><qty>2</qty></item>\
   </shop>"

let shop = lazy (Nok.Storage.of_string ~with_values:true shop_doc)

let card q = Nok.Eval.cardinality (Lazy.force shop) (parse q)

let test_storage_values () =
  let st = Lazy.force shop in
  Alcotest.(check bool) "has values" true (Nok.Storage.has_values st);
  (* Node 2 is the first <name>. *)
  Alcotest.(check string) "text" "anvil" (Nok.Storage.node_text st 2);
  (* The fourth item carries the id attribute. *)
  let item4 =
    match Nok.Storage.children st 0 with
    | _ :: _ :: _ :: i :: _ -> i
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check (option string)) "attribute" (Some "special")
    (Nok.Storage.node_attribute st item4 "id");
  Alcotest.(check (option string)) "absent attribute" None
    (Nok.Storage.node_attribute st item4 "class")

let test_storage_without_values () =
  let st = Nok.Storage.of_string shop_doc in
  Alcotest.(check bool) "no values" false (Nok.Storage.has_values st);
  Alcotest.(check string) "empty text" "" (Nok.Storage.node_text st 2);
  Alcotest.check_raises "evaluation refuses" Nok.Eval.Values_not_collected
    (fun () -> ignore (Nok.Eval.cardinality st (parse "//item[price>5]") : int))

let test_eval_numeric () =
  Alcotest.(check int) "price > 5" 4 (card "//item[price>5]");
  Alcotest.(check int) "price >= 10" 3 (card "//item[price>=10]");
  Alcotest.(check int) "price < 10" 2 (card "//item[price<10]");
  Alcotest.(check int) "price <= 10" 3 (card "//item[price<=10]");
  Alcotest.(check int) "price = 4.5" 1 (card "//item[price=4.5]");
  (* tnt has no qty child, so an existential qty comparison skips it. *)
  Alcotest.(check int) "qty != 3" 3 (card "//item[qty!=3]")

let test_eval_string () =
  Alcotest.(check int) "name = anvil" 2 (card "//item[name='anvil']");
  Alcotest.(check int) "name != anvil" 3 (card "//item[name!='anvil']");
  Alcotest.(check int) "name = none" 0 (card "//item[name='none']")

let test_eval_attribute () =
  Alcotest.(check int) "@id = special" 1 (card "//item[@id='special']");
  Alcotest.(check int) "@id = other" 0 (card "//item[@id='other']")

let test_eval_combined () =
  Alcotest.(check int) "structure + value" 2
    (card "//item[qty][price>5][name='anvil']/name");
  Alcotest.(check int) "value pred inside structural pred" 2
    (card "/shop[item[price>20]]/item[name='rope']")

let test_eval_missing_child () =
  (* The tnt item has no qty: a qty comparison never matches it. *)
  Alcotest.(check int) "qty < 100" 4 (card "//item[qty<100]")

(* ------------------------------------------------------------------ *)
(* Value synopsis *)

let uniform_doc n =
  let buf = Buffer.create (n * 40) in
  Buffer.add_string buf "<root>";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<row kind=\"%s\"><v>%d</v></row>"
         (if i mod 4 = 0 then "gold" else "base")
         i)
  done;
  Buffer.add_string buf "</root>";
  Buffer.contents buf

let test_synopsis_numeric_selectivity () =
  let st = Nok.Storage.of_string ~with_values:true (uniform_doc 1000) in
  let vs = Core.Value_synopsis.build st in
  let row = Option.get (Xml.Label.find_opt st.table "row") in
  let sel cmp lit =
    Core.Value_synopsis.selectivity vs ~context:row
      { Ast.target = Ast.Child_text "v"; cmp; literal = Ast.Number lit }
  in
  (* Values are uniform on 1..1000. *)
  Alcotest.(check bool) "P(v<500) ~ 0.5" true
    (Float.abs (sel Ast.Lt 500.0 -. 0.5) < 0.08);
  Alcotest.(check bool) "P(v<100) ~ 0.1" true
    (Float.abs (sel Ast.Lt 100.0 -. 0.1) < 0.05);
  Alcotest.(check bool) "P(v>900) ~ 0.1" true
    (Float.abs (sel Ast.Gt 900.0 -. 0.1) < 0.05);
  Alcotest.(check (float 1e-9)) "P(v<0) = 0" 0.0 (sel Ast.Lt 0.0);
  Alcotest.(check bool) "P(v>=1) ~ 1" true (sel Ast.Ge 1.0 > 0.9)

let test_synopsis_string_selectivity () =
  let st = Nok.Storage.of_string ~with_values:true (uniform_doc 1000) in
  let vs = Core.Value_synopsis.build st in
  let row = Option.get (Xml.Label.find_opt st.table "row") in
  let sel v =
    Core.Value_synopsis.selectivity vs ~context:row
      { Ast.target = Ast.Attribute "kind"; cmp = Ast.Eq; literal = Ast.Text v }
  in
  Alcotest.(check bool) "P(kind=gold) ~ 0.25" true (Float.abs (sel "gold" -. 0.25) < 0.03);
  Alcotest.(check bool) "P(kind=base) ~ 0.75" true (Float.abs (sel "base" -. 0.75) < 0.03);
  Alcotest.(check (float 1e-9)) "unseen pair" 0.0
    (Core.Value_synopsis.selectivity vs ~context:row
       { Ast.target = Ast.Child_text "nonexistent"; cmp = Ast.Eq;
         literal = Ast.Text "x" })

let test_synopsis_requires_values () =
  let st = Nok.Storage.of_string (uniform_doc 10) in
  Alcotest.(check bool) "refuses structural storage" true
    (match Core.Value_synopsis.build st with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_synopsis_targets_and_samples () =
  let st = Nok.Storage.of_string ~with_values:true (uniform_doc 100) in
  let vs = Core.Value_synopsis.build st in
  let row = Option.get (Xml.Label.find_opt st.table "row") in
  let targets = Core.Value_synopsis.targets_of vs ~context:row in
  Alcotest.(check int) "two targets" 2 (List.length targets);
  let samples =
    Core.Value_synopsis.sample_values vs ~context:row (Ast.Attribute "kind")
  in
  Alcotest.(check bool) "samples drawn from document" true
    (List.for_all (fun v -> v = "gold" || v = "base") samples && samples <> [])

(* ------------------------------------------------------------------ *)
(* End-to-end estimation *)

let test_estimation_with_values () =
  let doc = uniform_doc 1000 in
  let st = Nok.Storage.of_string ~with_values:true doc in
  let vs = Core.Value_synopsis.build st in
  let kernel = Core.Builder.of_string ~table:st.table doc in
  let with_values = Core.Estimator.create ~values:vs kernel in
  let without = Core.Estimator.create kernel in
  let q = parse "/root/row[v<250]" in
  let actual = float_of_int (Nok.Eval.cardinality st q) in
  let est = Core.Estimator.estimate with_values q in
  let ignored = Core.Estimator.estimate without q in
  Alcotest.(check bool)
    (Printf.sprintf "estimate close (%.0f vs actual %.0f)" est actual)
    true
    (Float.abs (est -. actual) < 0.15 *. actual);
  Alcotest.(check (float 1e-6)) "without synopsis the predicate is ignored"
    1000.0 ignored;
  (* Combined with a structural result step. *)
  let q = parse "/root/row[kind='gold']/v" in
  ignore q;
  let q2 = parse "/root/row[@kind='gold']/v" in
  let actual2 = float_of_int (Nok.Eval.cardinality st q2) in
  let est2 = Core.Estimator.estimate with_values q2 in
  Alcotest.(check bool)
    (Printf.sprintf "attribute predicate (%.0f vs %.0f)" est2 actual2)
    true
    (Float.abs (est2 -. actual2) < 0.15 *. Float.max 1.0 actual2)

let test_synopsis_facade_with_values () =
  let doc = uniform_doc 500 in
  let syn = Core.Synopsis.build ~with_values:true doc in
  Alcotest.(check bool) "value synopsis present" true
    (Core.Synopsis.values syn <> None);
  let est = Core.Synopsis.estimate syn "/root/row[v<100]" in
  Alcotest.(check bool)
    (Printf.sprintf "estimate in range (%.1f)" est)
    true
    (est > 60.0 && est < 140.0)

let test_valued_workload () =
  let doc = Datagen.Xmark.generate ~seed:77 ~items:40 () in
  let st = Nok.Storage.of_string ~with_values:true doc in
  let pt = Pathtree.Path_tree.of_string ~table:st.table doc in
  let rng = Datagen.Rng.create ~seed:5 in
  let queries = Datagen.Workload.valued pt ~storage:st ~rng ~count:60 () in
  Alcotest.(check bool) "got queries" true (List.length queries >= 40);
  let with_preds =
    List.filter (fun q -> Ast.has_value_predicates q) queries
  in
  Alcotest.(check bool)
    (Printf.sprintf "most carry value predicates (%d/%d)" (List.length with_preds)
       (List.length queries))
    true
    (2 * List.length with_preds > List.length queries);
  (* All evaluable, and equality queries grounded in real values are often
     non-empty. *)
  let nonempty =
    List.length (List.filter (fun q -> Nok.Eval.cardinality st q > 0) with_preds)
  in
  Alcotest.(check bool)
    (Printf.sprintf "many non-empty (%d/%d)" nonempty (List.length with_preds))
    true
    (3 * nonempty > List.length with_preds)

let test_valued_workload_end_to_end_error () =
  (* The headline: with the value synopsis the NRMSE over a valued workload
     is much lower than when value predicates are ignored. *)
  let doc = Datagen.Xmark.generate ~seed:78 ~items:50 () in
  let st = Nok.Storage.of_string ~with_values:true doc in
  let pt = Pathtree.Path_tree.of_string ~table:st.table doc in
  let kernel = Core.Builder.of_string ~table:st.table doc in
  let vs = Core.Value_synopsis.build st in
  let rng = Datagen.Rng.create ~seed:6 in
  let queries = Datagen.Workload.valued pt ~storage:st ~rng ~count:80 () in
  let run estimator =
    Stats.Metrics.summarize
      (List.map
         (fun q ->
           ( Core.Estimator.estimate estimator q,
             float_of_int (Nok.Eval.cardinality st q) ))
         queries)
  in
  let with_vs = run (Core.Estimator.create ~values:vs kernel) in
  let without = run (Core.Estimator.create kernel) in
  Alcotest.(check bool)
    (Printf.sprintf "value synopsis helps (RMSE %.2f vs %.2f)" with_vs.rmse
       without.rmse)
    true
    (with_vs.rmse < without.rmse)

let test_value_synopsis_serialization () =
  let st = Nok.Storage.of_string ~with_values:true (uniform_doc 300) in
  let vs = Core.Value_synopsis.build st in
  let again = Core.Value_synopsis.of_string (Core.Value_synopsis.to_string vs) in
  Alcotest.(check string) "stable dump" (Core.Value_synopsis.to_string vs)
    (Core.Value_synopsis.to_string again);
  Alcotest.(check int) "entries" (Core.Value_synopsis.entry_count vs)
    (Core.Value_synopsis.entry_count again);
  (* Selectivities must survive exactly; note the reloaded table has its own
     interning, so we resolve the context by name. *)
  let row r = Option.get (Xml.Label.find_opt st.table r) in
  let vp =
    { Ast.target = Ast.Child_text "v"; cmp = Ast.Lt; literal = Ast.Number 100.0 }
  in
  (* Reload into the same table for a like-for-like comparison. *)
  let again_same =
    Core.Value_synopsis.of_string ~table:st.table (Core.Value_synopsis.to_string vs)
  in
  Alcotest.(check (float 1e-12)) "selectivity preserved"
    (Core.Value_synopsis.selectivity vs ~context:(row "row") vp)
    (Core.Value_synopsis.selectivity again_same ~context:(row "row") vp);
  Alcotest.(check bool) "garbage rejected" true
    (match Core.Value_synopsis.of_string "junk" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_synopsis_bundle_with_values () =
  (* The full bundle (labels + kernel + HET + value synopsis) round-trips
     and keeps estimating value predicates. *)
  let doc = uniform_doc 400 in
  let syn = Core.Synopsis.build ~with_values:true doc in
  let reloaded = Core.Synopsis.of_string (Core.Synopsis.to_string syn) in
  Alcotest.(check bool) "values section survived" true
    (Core.Synopsis.values reloaded <> None);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) q (Core.Synopsis.estimate syn q)
        (Core.Synopsis.estimate reloaded q))
    [ "/root/row[v<100]"; "/root/row[@kind='gold']"; "/root/row[v>=350]/v" ]

(* Property: generated valued queries round-trip through the printer and
   parser (exercises value-predicate printing on realistic shapes). *)
let prop_valued_queries_round_trip =
  QCheck.Test.make ~count:30 ~name:"valued workload pp/parse round trip"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let doc = Datagen.Xmark.generate ~seed:(seed + 1) ~items:10 () in
      let st = Nok.Storage.of_string ~with_values:true doc in
      let pt = Pathtree.Path_tree.of_string ~table:st.table doc in
      let rng = Datagen.Rng.create ~seed in
      let queries = Datagen.Workload.valued pt ~storage:st ~rng ~count:10 () in
      List.for_all
        (fun q -> Ast.equal (Parser.parse (Ast.to_string q)) q)
        queries)

let props = List.map QCheck_alcotest.to_alcotest [ prop_valued_queries_round_trip ]

let () =
  Alcotest.run "values"
    [
      ( "parser",
        [
          Alcotest.test_case "forms" `Quick test_parse_value_predicates;
          Alcotest.test_case "round trips" `Quick test_parse_value_round_trips;
          Alcotest.test_case "mixed qualifiers" `Quick test_parse_mixed_qualifiers;
          Alcotest.test_case "errors" `Quick test_parse_value_errors;
        ] );
      ( "nok",
        [
          Alcotest.test_case "storage values" `Quick test_storage_values;
          Alcotest.test_case "without values" `Quick test_storage_without_values;
          Alcotest.test_case "numeric" `Quick test_eval_numeric;
          Alcotest.test_case "string" `Quick test_eval_string;
          Alcotest.test_case "attribute" `Quick test_eval_attribute;
          Alcotest.test_case "combined" `Quick test_eval_combined;
          Alcotest.test_case "missing child" `Quick test_eval_missing_child;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "numeric selectivity" `Quick
            test_synopsis_numeric_selectivity;
          Alcotest.test_case "string selectivity" `Quick
            test_synopsis_string_selectivity;
          Alcotest.test_case "requires values" `Quick test_synopsis_requires_values;
          Alcotest.test_case "targets and samples" `Quick
            test_synopsis_targets_and_samples;
        ] );
      ( "estimation",
        [
          Alcotest.test_case "uniform values" `Quick test_estimation_with_values;
          Alcotest.test_case "facade" `Quick test_synopsis_facade_with_values;
          Alcotest.test_case "valued workload" `Quick test_valued_workload;
          Alcotest.test_case "end-to-end error" `Quick
            test_valued_workload_end_to_end_error;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "value synopsis" `Quick
            test_value_synopsis_serialization;
          Alcotest.test_case "full bundle" `Quick test_synopsis_bundle_with_values;
        ] );
      ("properties", props);
    ]
