(* Tests for the XPath substrate: parser, printer, classification, query
   tree, and the naive reference evaluator (the ground-truth oracle). *)

open Xpath

let path = Alcotest.testable Ast.pp Ast.equal

let parse = Parser.parse

let check_parse_error input =
  match Parser.parse input with
  | p -> Alcotest.failf "expected syntax error on %S, parsed %s" input (Ast.to_string p)
  | exception Parser.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parser and printer *)

let test_parse_simple () =
  Alcotest.check path "simple"
    [ { Ast.axis = Child; test = Name "a"; predicates = []; value_predicates = [] };
      { Ast.axis = Child; test = Name "b"; predicates = []; value_predicates = [] } ]
    (parse "/a/b")

let test_parse_descendant () =
  Alcotest.check path "descendant"
    [ { Ast.axis = Descendant; test = Name "s"; predicates = []; value_predicates = [] };
      { Ast.axis = Descendant; test = Name "s"; predicates = []; value_predicates = [] } ]
    (parse "//s//s")

let test_parse_wildcard () =
  Alcotest.check path "wildcard"
    [ { Ast.axis = Child; test = Name "a"; predicates = []; value_predicates = [] };
      { Ast.axis = Descendant; test = Wildcard; predicates = []; value_predicates = [] } ]
    (parse "/a//*")

let test_parse_predicate () =
  Alcotest.check path "predicate"
    [ { Ast.axis = Child; test = Name "a"; predicates = []; value_predicates = [] };
      { Ast.axis = Child; test = Name "c";
        predicates = [ [ { Ast.axis = Child; test = Name "t"; predicates = [];
                           value_predicates = [] } ] ];
        value_predicates = [] };
      { Ast.axis = Child; test = Name "s"; predicates = []; value_predicates = [] } ]
    (parse "/a/c[t]/s")

let test_parse_nested_predicates () =
  let q = parse "//regions/australia/item[shipping][.//bidder/increase]/location" in
  Alcotest.(check int) "steps" 7 (Ast.steps q);
  Alcotest.(check int) "predicates" 2 (Ast.predicate_count q);
  Alcotest.(check string) "round trip"
    "//regions/australia/item[shipping][.//bidder/increase]/location"
    (Ast.to_string q)

let test_parse_whitespace () =
  Alcotest.check path "whitespace tolerated" (parse "/a/c[t]/s")
    (parse " / a / c [ t ] / s ")

let test_pp_round_trip_examples () =
  let examples =
    [ "/a/b"; "//s//s"; "/a//*"; "/a/c[t]/s"; "/a/c[s[t]]/p"; "/a[b][c]/d";
      "//item[.//keyword]"; "/a/b[c/d]//e"; "//*"; "/dblp/article[pages]/publisher" ]
  in
  List.iter
    (fun q -> Alcotest.(check string) q q (Ast.to_string (parse q)))
    examples

let test_parse_errors () =
  List.iter check_parse_error
    [ ""; "a/b"; "/"; "/a["; "/a]"; "/a[]"; "/a//"; "/a/b junk"; "/a[b"; "/[a]";
      "/a[/]" ]

(* ------------------------------------------------------------------ *)
(* Ast measures *)

let test_measures () =
  let q = parse "/a/c[s[t]][u]/p" in
  Alcotest.(check int) "steps counts nested" 6 (Ast.steps q);
  Alcotest.(check int) "predicate count nested" 3 (Ast.predicate_count q);
  Alcotest.(check int) "max predicates per step" 2 (Ast.max_predicates_per_step q);
  Alcotest.(check bool) "no descendant" false (Ast.has_descendant q);
  Alcotest.(check bool) "no wildcard" false (Ast.has_wildcard q);
  Alcotest.(check bool) "descendant in predicate detected" true
    (Ast.has_descendant (parse "/a[.//b]"));
  Alcotest.(check bool) "wildcard in predicate detected" true
    (Ast.has_wildcard (parse "/a[*/b]"))

(* ------------------------------------------------------------------ *)
(* Classification *)

let test_shapes () =
  let check q expected =
    Alcotest.(check string) q expected
      (Classify.shape_to_string (Classify.shape (parse q)))
  in
  check "/a/b/c" "SP";
  check "/a/b[c]/d" "BP";
  check "/a/b[c][d/e]" "BP";
  check "//a/b" "CP";
  check "/a/*/b" "CP";
  check "/a/b[.//c]" "CP";
  check "/a/b[*]" "CP"

let test_qrl () =
  let check q expected =
    Alcotest.(check int) q expected (Classify.qrl (parse q))
  in
  check "/a/b/c" 0;
  check "//a/b" 0;
  check "//s//s" 1;
  check "//s//s//s" 2;
  check "//*//*" 1;
  check "//s/s" 0;  (* child steps never make a query recursive *)
  check "//s[.//t]//s" 1;
  check "//a//b" 0

let test_is_recursive () =
  Alcotest.(check bool) "recursive" true (Classify.is_recursive (parse "//s//s"));
  Alcotest.(check bool) "not recursive" false (Classify.is_recursive (parse "/a//b"))

(* ------------------------------------------------------------------ *)
(* Query tree *)

let test_query_tree_shape () =
  let qt = Query_tree.of_path (parse "/a/c[t][s/p]/s") in
  Alcotest.(check int) "size" 6 qt.size;
  Alcotest.(check bool) "root is a" true (qt.root.test = Ast.Name "a");
  let c = Option.get qt.root.spine in
  Alcotest.(check int) "c has two predicates" 2 (List.length c.predicates);
  Alcotest.(check bool) "result is s" true (qt.result.test = Ast.Name "s");
  Alcotest.(check bool) "result flagged" true (Query_tree.is_result qt qt.result);
  Alcotest.(check bool) "predicate not result path" false
    (List.hd c.predicates).on_result_path

let test_query_tree_round_trip () =
  let examples =
    [ "/a/b"; "/a/c[t][s/p]/s"; "//item[.//keyword]/name"; "/a[b[c]]/d" ]
  in
  List.iter
    (fun q ->
      let qt = Query_tree.of_path (parse q) in
      Alcotest.check path q (parse q) (Query_tree.to_path qt))
    examples

let test_query_tree_ids_dense () =
  let qt = Query_tree.of_path (parse "/a/c[t][s/p]/s") in
  let seen = Array.make qt.size false in
  Query_tree.iter qt ~f:(fun node -> seen.(node.id) <- true);
  Alcotest.(check bool) "all ids covered" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Reference evaluator on the paper's running example *)

let idx = lazy (Eval_reference.index (Datagen.Paper_example.tree ()))

let card q = Eval_reference.cardinality (Lazy.force idx) (parse q)

let test_eval_simple_paths () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "/a" 1;
  check "/a/c" 2;
  check "/a/c/s" 5;
  check "/a/c/s/s" 2;
  check "/a/c/s/s/s" 2;
  check "/a/c/s/s/t" 1;
  check "/a/c/s/p" 9;
  check "/a/t" 1;
  check "/a/u" 1;
  check "/a/c/p" 3;
  check "/a/c/t" 2;
  check "/b" 0;
  check "/a/c/s/s/s/p" 3

let test_eval_descendant () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "//s" 9;
  check "//s//s" 4;
  check "//s//s//p" 5;  (* the paper's Observation 3 example *)
  check "//p" 17;
  check "//s/p" 14;
  check "//c//t" 5;
  check "//a" 1;
  check "//x" 0

let test_eval_wildcard () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "/a/*" 4;
  check "//*" 36;
  check "/a/c/*" 10;
  check "/*" 1;
  check "/a/c/s/*" 13

let test_eval_branching () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "/a/c[t]/s" 5;
  check "/a/c[u]/s" 0;
  check "/a/c/s[t]/p" 4;
  check "/a/c/s[s]/p" 4;
  check "/a/c[s[t]]/p" 1;
  check "/a/c[s/s]/t" 2;
  check "/a[t][u]/c" 2;
  check "/a/c/s[t][p]" 2

let test_eval_complex () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "//s[t]/p" 6;  (* s1,s3 (2+2) and sB (2) *)
  check "//c[.//t]/s" 5;
  check "//s[.//s[t]]" 1;  (* only s4 has a descendant s with a t child *)
  check "/a//s[s]/t" 0;
  check "//*[t]" 6  (* a, c1, c2, s1, s3, sB all have a t child *)

let test_eval_result_distinct () =
  (* //s//p must not double-count p nodes reachable through two s ancestors. *)
  let n = card "//s//p" in
  Alcotest.(check int) "//s//p distinct" 14 n

let test_eval_select_sorted () =
  let ids = Eval_reference.select (Lazy.force idx) (parse "//s") in
  Alcotest.(check int) "9 results" 9 (List.length ids);
  Alcotest.(check bool) "sorted" true
    (List.sort Int.compare ids = ids);
  Alcotest.(check int) "distinct" 9
    (List.length (List.sort_uniq Int.compare ids))

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_ast : Ast.t QCheck.arbitrary =
  let open QCheck in
  let gen_test rand =
    match Gen.int_bound 5 rand with
    | 0 -> Ast.Wildcard
    | _ -> Ast.Name (String.make 1 (Char.chr (Char.code 'a' + Gen.int_bound 4 rand)))
  in
  let gen_axis rand = if Gen.int_bound 3 rand = 0 then Ast.Descendant else Ast.Child in
  let rec gen_path depth len rand =
    List.init len (fun _ ->
        let predicates =
          if depth >= 2 then []
          else
            List.init
              (if Gen.int_bound 2 rand = 0 then Gen.int_bound 2 rand else 0)
              (fun _ -> gen_path (depth + 1) (1 + Gen.int_bound 2 rand) rand)
        in
        let value_predicates =
          if Gen.int_bound 3 rand > 0 then []
          else
            [ (let target =
                 if Gen.int_bound 2 rand = 0 then
                   Ast.Attribute (Printf.sprintf "x%d" (Gen.int_bound 3 rand))
                 else Ast.Child_text (Printf.sprintf "v%d" (Gen.int_bound 3 rand))
               in
               match Gen.int_bound 5 rand with
               | 0 -> { Ast.target; cmp = Ast.Eq; literal = Ast.Text "lit" }
               | 1 -> { Ast.target; cmp = Ast.Ne; literal = Ast.Text "lit" }
               | 2 ->
                 { Ast.target; cmp = Ast.Lt;
                   literal = Ast.Number (float_of_int (Gen.int_bound 100 rand)) }
               | 3 ->
                 { Ast.target; cmp = Ast.Ge;
                   literal = Ast.Number (float_of_int (Gen.int_bound 100 rand)) }
               | 4 ->
                 { Ast.target; cmp = Ast.Eq;
                   literal = Ast.Number (float_of_int (Gen.int_bound 100 rand)) }
               | _ ->
                 { Ast.target; cmp = Ast.Le;
                   literal = Ast.Number (float_of_int (Gen.int_bound 100 rand)) }) ]
        in
        { Ast.axis = gen_axis rand; test = gen_test rand; predicates;
          value_predicates })
  in
  make ~print:Ast.to_string (fun rand -> gen_path 0 (1 + Gen.int_bound 4 rand) rand)

let prop_pp_parse_round_trip =
  QCheck.Test.make ~count:500 ~name:"parse (to_string q) = q" gen_ast (fun q ->
      Ast.equal (Parser.parse (Ast.to_string q)) q)

let prop_query_tree_round_trip =
  QCheck.Test.make ~count:500 ~name:"query tree to_path round trip" gen_ast
    (fun q -> Ast.equal (Query_tree.to_path (Query_tree.of_path q)) q)

let prop_query_tree_size =
  QCheck.Test.make ~count:500 ~name:"query tree size = steps" gen_ast (fun q ->
      (Query_tree.of_path q).size = Ast.steps q)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pp_parse_round_trip; prop_query_tree_round_trip; prop_query_tree_size ]

let () =
  Alcotest.run "xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "descendant" `Quick test_parse_descendant;
          Alcotest.test_case "wildcard" `Quick test_parse_wildcard;
          Alcotest.test_case "predicate" `Quick test_parse_predicate;
          Alcotest.test_case "nested predicates" `Quick test_parse_nested_predicates;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "pp round trips" `Quick test_pp_round_trip_examples;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        ] );
      ("measures", [ Alcotest.test_case "ast measures" `Quick test_measures ]);
      ( "classify",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "qrl" `Quick test_qrl;
          Alcotest.test_case "is_recursive" `Quick test_is_recursive;
        ] );
      ( "query_tree",
        [
          Alcotest.test_case "shape" `Quick test_query_tree_shape;
          Alcotest.test_case "round trip" `Quick test_query_tree_round_trip;
          Alcotest.test_case "dense ids" `Quick test_query_tree_ids_dense;
        ] );
      ( "eval_reference",
        [
          Alcotest.test_case "simple paths" `Quick test_eval_simple_paths;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "wildcard" `Quick test_eval_wildcard;
          Alcotest.test_case "branching" `Quick test_eval_branching;
          Alcotest.test_case "complex" `Quick test_eval_complex;
          Alcotest.test_case "distinct results" `Quick test_eval_result_distinct;
          Alcotest.test_case "select sorted" `Quick test_eval_select_sorted;
        ] );
      ("properties", props);
    ]
