(* Core XSEED tests: counter stacks (Figure 3), kernel construction
   (Example 2), incremental maintenance, serialization, and the traveler's
   EPT checked against the paper's Section 4 dump, value by value. *)

let paper_kernel = lazy (Core.Builder.of_string Datagen.Paper_example.document)

let label kernel name =
  match Xml.Label.find_opt (Core.Kernel.table kernel) name with
  | Some l -> l
  | None -> Alcotest.failf "label %s not in kernel" name

(* ------------------------------------------------------------------ *)
(* Counter stacks *)

let test_counter_figure3 () =
  (* Paper Figure 3: after pushing a b b c c b the occurrences are a=1, b=3,
     c=2 and three stacks are non-empty. *)
  let cs = Core.Counter_stacks.create () in
  let a = 0 and b = 1 and c = 2 in
  let rls = List.map (Core.Counter_stacks.push cs) [ a; b; b; c; c; b ] in
  Alcotest.(check (list int)) "recursion level after each push" [ 0; 0; 1; 1; 1; 2 ] rls;
  Alcotest.(check int) "occ a" 1 (Core.Counter_stacks.occurrences cs a);
  Alcotest.(check int) "occ b" 3 (Core.Counter_stacks.occurrences cs b);
  Alcotest.(check int) "occ c" 2 (Core.Counter_stacks.occurrences cs c);
  Alcotest.(check int) "non-empty stacks" 3 (Core.Counter_stacks.stack_count cs);
  Alcotest.(check int) "depth" 6 (Core.Counter_stacks.depth cs);
  (* Pop back out in path (LIFO) order. *)
  List.iter (Core.Counter_stacks.pop cs) [ b; c; c; b; b; a ];
  Alcotest.(check int) "empty rl" (-1) (Core.Counter_stacks.recursion_level cs);
  Alcotest.(check int) "empty depth" 0 (Core.Counter_stacks.depth cs)

let test_counter_pop_validation () =
  let cs = Core.Counter_stacks.create () in
  ignore (Core.Counter_stacks.push cs 5 : int);
  Alcotest.check_raises "pop absent item"
    (Invalid_argument "Counter_stacks.pop: item not on the path") (fun () ->
      Core.Counter_stacks.pop cs 7)

let test_counter_interleaved () =
  let cs = Core.Counter_stacks.create () in
  (* Path a/b/a/b/a : rl grows with the deepest repetition. *)
  Alcotest.(check int) "a" 0 (Core.Counter_stacks.push cs 0);
  Alcotest.(check int) "a/b" 0 (Core.Counter_stacks.push cs 1);
  Alcotest.(check int) "a/b/a" 1 (Core.Counter_stacks.push cs 0);
  Alcotest.(check int) "a/b/a/b" 1 (Core.Counter_stacks.push cs 1);
  Alcotest.(check int) "a/b/a/b/a" 2 (Core.Counter_stacks.push cs 0);
  Core.Counter_stacks.pop cs 0;
  Alcotest.(check int) "back to rl 1" 1 (Core.Counter_stacks.recursion_level cs)

(* Property: recursion level always equals the naive "max occurrences - 1"
   computation over random tree walks. *)
let prop_counter_matches_naive =
  let open QCheck in
  (* A walk is a list of pushes (labels 0..3); we simulate a DFS where after
     each push we may pop some suffix. Encode as ints: 0..3 push, 4 pop. *)
  let gen = Gen.list_size (Gen.int_range 1 60) (Gen.int_bound 4) in
  Test.make ~count:500 ~name:"counter stacks = naive max-occurrence" (make gen)
    (fun ops ->
      let cs = Core.Counter_stacks.create () in
      let path = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if op = 4 then (
            match !path with
            | [] -> ()
            | x :: rest ->
              Core.Counter_stacks.pop cs x;
              path := rest)
          else begin
            ignore (Core.Counter_stacks.push cs op : int);
            path := op :: !path
          end;
          let naive =
            if !path = [] then -1
            else
              let counts = Hashtbl.create 8 in
              List.iter
                (fun x ->
                  Hashtbl.replace counts x
                    (1 + Option.value (Hashtbl.find_opt counts x) ~default:0))
                !path;
              Hashtbl.fold (fun _ c acc -> max acc c) counts 0 - 1
          in
          if Core.Counter_stacks.recursion_level cs <> naive then ok := false)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Kernel construction: every edge label of the paper's Figure 2(b). *)

let check_edge kernel src dst expected =
  let e =
    match Core.Kernel.find_edge kernel (label kernel src) (label kernel dst) with
    | Some e -> e
    | None -> Alcotest.failf "edge (%s,%s) missing" src dst
  in
  let got = List.init e.levels (fun l -> Core.Kernel.edge_counts e l) in
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "edge (%s,%s)" src dst)
    expected got

let test_kernel_example2 () =
  let k = Lazy.force paper_kernel in
  Alcotest.(check int) "vertices" 6 (Core.Kernel.vertex_count k);
  Alcotest.(check int) "edges" 9 (Core.Kernel.edge_count k);
  Alcotest.(check string) "root" "a"
    (Xml.Label.name (Core.Kernel.table k) (Core.Kernel.root k));
  check_edge k "a" "t" [ (1, 1) ];
  check_edge k "a" "u" [ (1, 1) ];
  check_edge k "a" "c" [ (1, 2) ];
  check_edge k "c" "t" [ (2, 2) ];
  check_edge k "c" "p" [ (2, 3) ];
  check_edge k "c" "s" [ (2, 5) ];
  check_edge k "s" "t" [ (2, 2); (1, 1) ];
  check_edge k "s" "p" [ (5, 9); (1, 2); (2, 3) ];
  check_edge k "s" "s" [ (0, 0); (2, 2); (1, 2) ]

let test_kernel_total_children () =
  let k = Lazy.force paper_kernel in
  let s = label k "s" and p = label k "p" and t = label k "t" and a = label k "a" in
  Alcotest.(check int) "S(a,0) counts the root" 1
    (Core.Kernel.total_children k a ~level:0);
  Alcotest.(check int) "S(t,0)" 5 (Core.Kernel.total_children k t ~level:0);
  Alcotest.(check int) "S(s,0)" 5 (Core.Kernel.total_children k s ~level:0);
  Alcotest.(check int) "S(s,1)" 2 (Core.Kernel.total_children k s ~level:1);
  Alcotest.(check int) "S(s,2)" 2 (Core.Kernel.total_children k s ~level:2);
  Alcotest.(check int) "S(p,0)" 12 (Core.Kernel.total_children k p ~level:0);
  Alcotest.(check int) "S(p,3) beyond levels" 0
    (Core.Kernel.total_children k p ~level:3)

let test_kernel_observation3 () =
  (* Observation 3: |//s//s//p| = sum of child counts of (s,p) at recursion
     levels >= 1 = 2 + 3 = 5. *)
  let k = Lazy.force paper_kernel in
  let e =
    Option.get (Core.Kernel.find_edge k (label k "s") (label k "p"))
  in
  let sum = ref 0 in
  for l = 1 to e.levels - 1 do
    sum := !sum + snd (Core.Kernel.edge_counts e l)
  done;
  Alcotest.(check int) "kernel sum" 5 !sum;
  let actual =
    Nok.Eval.cardinality
      (Nok.Storage.of_string Datagen.Paper_example.document)
      (Xpath.Parser.parse "//s//s//p")
  in
  Alcotest.(check int) "matches actual //s//s//p" 5 actual

let test_kernel_size_small () =
  let k = Lazy.force paper_kernel in
  let bytes = Core.Kernel.size_in_bytes k in
  Alcotest.(check bool) "kernel is tiny" true (bytes < 500);
  Alcotest.(check bool) "kernel is non-trivial" true (bytes > 50)

let test_kernel_serialization_round_trip () =
  let k = Lazy.force paper_kernel in
  let again = Core.Kernel.of_string (Core.Kernel.to_string k) in
  Alcotest.(check bool) "round trip equal" true (Core.Kernel.equal k again);
  Alcotest.(check int) "same size" (Core.Kernel.size_in_bytes k)
    (Core.Kernel.size_in_bytes again)

let test_kernel_copy_independent () =
  let k = Core.Builder.of_string "<a><b/></a>" in
  let k2 = Core.Kernel.copy k in
  let e = Core.Kernel.get_edge k (label k "a") (label k "b") in
  Core.Kernel.add_at_level e 0 ~parents:1 ~children:1;
  Alcotest.(check bool) "copy unaffected" false (Core.Kernel.equal k k2)

let test_kernel_of_string_malformed () =
  Alcotest.(check bool) "bad dump rejected" true
    (match Core.Kernel.of_string "edge a" with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance *)

let test_builder_add_subtree () =
  (* Insert <s><p/></s> under the first c of a small document; the kernel
     must equal the one built from the edited document. *)
  let before = "<a><c><t/></c><c><p/></c></a>" in
  let after = "<a><c><t/><s><p/></s></c><c><p/></c></a>" in
  let k = Core.Builder.of_string before in
  let a = label k "a" and c = label k "c" in
  Core.Builder.add_subtree k ~at:[ a; c ] (Xml.Sax.events "<s><p/></s>");
  let expected = Core.Builder.of_string ~table:(Core.Kernel.table k) after in
  Alcotest.(check string) "kernels equal" (Core.Kernel.to_string expected)
    (Core.Kernel.to_string k)

let test_builder_add_recursive_subtree () =
  (* Insertion at a path that creates recursion: the new levels must land at
     the right indices. *)
  let before = "<a><s><t/></s></a>" in
  let after = "<a><s><t/><s><t/></s></s></a>" in
  let k = Core.Builder.of_string before in
  let a = label k "a" and s = label k "s" in
  Core.Builder.add_subtree k ~at:[ a; s ] (Xml.Sax.events "<s><t/></s>");
  let expected = Core.Builder.of_string ~table:(Core.Kernel.table k) after in
  Alcotest.(check string) "kernels equal" (Core.Kernel.to_string expected)
    (Core.Kernel.to_string k)

let test_builder_remove_subtree () =
  let before = "<a><c><t/><s><p/></s></c><c><p/></c></a>" in
  let after = "<a><c><t/></c><c><p/></c></a>" in
  let k = Core.Builder.of_string before in
  let a = label k "a" and c = label k "c" in
  Core.Builder.remove_subtree k ~at:[ a; c ] (Xml.Sax.events "<s><p/></s>");
  let expected = Core.Builder.of_string ~table:(Core.Kernel.table k) after in
  Alcotest.(check string) "kernels equal" (Core.Kernel.to_string expected)
    (Core.Kernel.to_string k)

let test_builder_add_remove_round_trip () =
  let doc = Datagen.Paper_example.document in
  let k = Core.Builder.of_string doc in
  let baseline = Core.Kernel.to_string k in
  let a = label k "a" and c = label k "c" in
  let sub = Xml.Sax.events "<x><y/><y/></x>" in
  Core.Builder.add_subtree k ~at:[ a; c ] sub;
  Alcotest.(check bool) "changed" true (Core.Kernel.to_string k <> baseline);
  Core.Builder.remove_subtree k ~at:[ a; c ] sub;
  Alcotest.(check string) "restored" baseline (Core.Kernel.to_string k)

let test_builder_rejects_bad_subtrees () =
  let k = Core.Builder.of_string "<a><b/></a>" in
  let a = label k "a" in
  Alcotest.(check bool) "two roots rejected" true
    (match Core.Builder.add_subtree k ~at:[ a ] (Xml.Sax.events "<x/>" @ Xml.Sax.events "<y/>") with
     | () -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty path rejected" true
    (match Core.Builder.add_subtree k ~at:[] (Xml.Sax.events "<x/>") with
     | () -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Traveler: the paper's EPT, event by event. *)

let expected_ept =
  (* label, dewey, card, fsel, bsel — transcribed from Section 4. *)
  [
    ("a", "1.", 1.0, 1.0, 1.0);
    ("t", "1.1.", 1.0, 0.2, 1.0);
    ("u", "1.2.", 1.0, 1.0, 1.0);
    ("c", "1.3.", 2.0, 1.0, 1.0);
    ("t", "1.3.1.", 2.0, 0.4, 1.0);
    ("p", "1.3.2.", 3.0, 0.25, 1.0);
    ("s", "1.3.3.", 5.0, 1.0, 1.0);
    ("t", "1.3.3.1.", 2.0, 0.4, 0.4);
    ("p", "1.3.3.2.", 9.0, 0.75, 1.0);
    ("s", "1.3.3.3.", 2.0, 1.0, 0.4);
    ("t", "1.3.3.3.1.", 1.0, 1.0, 0.5);
    ("p", "1.3.3.3.2.", 2.0, 1.0, 0.5);
    ("s", "1.3.3.3.3.", 2.0, 1.0, 0.5);
    ("p", "1.3.3.3.3.1.", 3.0, 1.0, 1.0);
  ]

let collect_opens kernel =
  let traveler = Core.Traveler.create kernel in
  let opens = ref [] in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open { label = l; dewey; card; fsel; bsel } ->
        opens :=
          (Xml.Label.name (Core.Kernel.table kernel) l,
           Xml.Dewey.to_string dewey, card, fsel, bsel)
          :: !opens
      | Core.Traveler.Close _ | Core.Traveler.Eos -> ());
  List.rev !opens

let test_traveler_ept () =
  let got = collect_opens (Lazy.force paper_kernel) in
  Alcotest.(check int) "14 open events" 14 (List.length got);
  List.iter2
    (fun (el, ed, ec, ef, eb) (gl, gd, gc, gf, gb) ->
      let ctx = Printf.sprintf "%s %s" el ed in
      Alcotest.(check string) (ctx ^ " label") el gl;
      Alcotest.(check string) (ctx ^ " dewey") ed gd;
      Alcotest.(check (float 1e-9)) (ctx ^ " card") ec gc;
      Alcotest.(check (float 1e-9)) (ctx ^ " fsel") ef gf;
      Alcotest.(check (float 1e-9)) (ctx ^ " bsel") eb gb)
    expected_ept got

let test_traveler_balanced () =
  let traveler = Core.Traveler.create (Lazy.force paper_kernel) in
  let depth = ref 0 and max_depth = ref 0 and closes = ref 0 in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open _ ->
        incr depth;
        if !depth > !max_depth then max_depth := !depth
      | Core.Traveler.Close _ ->
        decr depth;
        incr closes
      | Core.Traveler.Eos -> ());
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "14 closes" 14 !closes;
  Alcotest.(check int) "depth 6" 6 !max_depth

let test_traveler_eos_stable () =
  let traveler = Core.Traveler.create (Lazy.force paper_kernel) in
  Core.Traveler.iter traveler ~f:(fun _ -> ());
  Alcotest.(check bool) "eos" true (Core.Traveler.next traveler = Core.Traveler.Eos);
  Alcotest.(check bool) "eos again" true
    (Core.Traveler.next traveler = Core.Traveler.Eos)

let test_traveler_threshold_prunes () =
  (* With a threshold of 2.5 every branch estimated at <= 2.5 nodes is cut:
     only a(1), c(2), t(2)... wait cards <= 2.5 are pruned, so only a, c
     with card > 2.5? c has card 2 <= 2.5. Only the root survives below
     threshold pruning of its children except s (5), p (3). *)
  let traveler = Core.Traveler.create ~card_threshold:2.5 (Lazy.force paper_kernel) in
  let labels = ref [] in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open { label = l; _ } ->
        labels := Xml.Label.name (Core.Kernel.table (Lazy.force paper_kernel)) l :: !labels
      | _ -> ());
  (* Root always opens; its children t(1), u(1), c(2) are all pruned. *)
  Alcotest.(check (list string)) "only root survives" [ "a" ] (List.rev !labels)

let test_traveler_recursion_terminates () =
  (* A cyclic kernel (self-loop) must terminate thanks to the level bound. *)
  let k = Core.Builder.of_string "<s><s><s><s/></s></s></s>" in
  let traveler = Core.Traveler.create ~card_threshold:0.0 k in
  let count = ref 0 in
  Core.Traveler.iter traveler ~f:(fun _ -> incr count);
  Alcotest.(check bool) "finite" true (!count < 100)

let test_ept_to_xml () =
  let xml = Core.Traveler.ept_to_xml (Lazy.force paper_kernel) in
  Alcotest.(check bool) "root attrs" true
    (String.length xml > 0
     && (let prefix = "<a dID=\"1.\" card=\"1\" fsel=\"1\" bsel=\"1\">" in
         String.length xml >= String.length prefix
         && String.sub xml 0 (String.length prefix) = prefix));
  (* Spot-check a nested value from the paper's dump. *)
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "1.3.2 p row" true
    (contains xml "<p dID=\"1.3.2.\" card=\"3\" fsel=\"0.25\" bsel=\"1\"/>");
  Alcotest.(check bool) "1.3.3.3 s row" true
    (contains xml "<s dID=\"1.3.3.3.\" card=\"2\" fsel=\"1\" bsel=\"0.4\">")

(* ------------------------------------------------------------------ *)
(* Path hashing *)

let test_path_hash_distinct_on_paper_paths () =
  (* All 14 rooted paths of the example must hash distinctly. *)
  let pt = Pathtree.Path_tree.of_string Datagen.Paper_example.document in
  let hashes =
    List.map
      (fun (labels, _) -> Core.Path_hash.of_labels labels)
      (Pathtree.Path_tree.all_simple_paths pt)
  in
  Alcotest.(check int) "distinct hashes" 14
    (List.length (List.sort_uniq Int.compare hashes))

let test_path_hash_incremental () =
  let h1 = Core.Path_hash.of_labels [ 3; 1; 4 ] in
  let h2 = Core.Path_hash.(extend (extend (extend empty 3) 1) 4) in
  Alcotest.(check int) "of_labels = folded extend" h1 h2

let test_path_hash_order_sensitive () =
  Alcotest.(check bool) "a/b <> b/a" true
    (Core.Path_hash.of_labels [ 0; 1 ] <> Core.Path_hash.of_labels [ 1; 0 ]);
  Alcotest.(check bool) "prefix differs" true
    (Core.Path_hash.of_labels [ 0 ] <> Core.Path_hash.of_labels [ 0; 0 ])

let test_path_hash_branching_keys () =
  let open Core.Path_hash in
  Alcotest.(check int) "predicate order canonical"
    (branching ~parent:5 ~predicates:[ 1; 2 ] ~next:3)
    (branching ~parent:5 ~predicates:[ 2; 1 ] ~next:3);
  Alcotest.(check bool) "next matters" true
    (branching ~parent:5 ~predicates:[ 1 ] ~next:3
     <> branching ~parent:5 ~predicates:[ 1 ] ~next:4);
  Alcotest.(check bool) "predicate vs next distinct" true
    (branching ~parent:5 ~predicates:[ 1 ] ~next:2
     <> branching ~parent:5 ~predicates:[ 2 ] ~next:1);
  Alcotest.(check bool) "no-next sentinel" true
    (branching ~parent:5 ~predicates:[ 1 ] ~next:(-1)
     <> branching ~parent:5 ~predicates:[ 1 ] ~next:0)

let test_path_hash_collision_rate () =
  (* The paper keys the HET by one 32-bit hash and relies on collisions
     being negligible for tens of thousands of paths; measure it. *)
  let rng = Datagen.Rng.create ~seed:99 in
  let seen = Hashtbl.create (1 lsl 17) in
  let collisions = ref 0 in
  let total = 50_000 in
  for _ = 1 to total do
    let len = 1 + Datagen.Rng.int rng 10 in
    let labels = List.init len (fun _ -> Datagen.Rng.int rng 200) in
    let h = Core.Path_hash.of_labels labels in
    match Hashtbl.find_opt seen h with
    | Some other when other <> labels -> incr collisions
    | Some _ -> ()
    | None -> Hashtbl.add seen h labels
  done;
  Alcotest.(check bool)
    (Printf.sprintf "collisions negligible (%d / %d)" !collisions total)
    true
    (!collisions < total / 500)

(* ------------------------------------------------------------------ *)
(* Traveler x HET interaction *)

let test_traveler_het_overrides_card () =
  (* A simple-path HET entry replaces the estimated cardinality and bsel of
     that exact path in the EPT (Section 5's modified EST). *)
  let k = Lazy.force paper_kernel in
  let table = Core.Kernel.table k in
  let labels names = List.map (fun n -> Option.get (Xml.Label.find_opt table n)) names in
  let het = Core.Het.create () in
  Core.Het.add_simple het
    ~hash:(Core.Path_hash.of_labels (labels [ "a"; "c" ]))
    ~card:7 ~bsel:(Some 0.25) ~error:5.0;
  let traveler = Core.Traveler.create ~het k in
  let found = ref None in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open { label; dewey; card; bsel; _ }
        when Xml.Label.name table label = "c"
             && Xml.Dewey.to_string dewey = "1.3." ->
        found := Some (card, bsel)
      | _ -> ());
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "card and bsel overridden" (Some (7.0, 0.25)) !found

let test_traveler_het_zero_entry_prunes () =
  let k = Lazy.force paper_kernel in
  let table = Core.Kernel.table k in
  let labels names = List.map (fun n -> Option.get (Xml.Label.find_opt table n)) names in
  let het = Core.Het.create () in
  Core.Het.add_simple het
    ~hash:(Core.Path_hash.of_labels (labels [ "a"; "c"; "s" ]))
    ~card:0 ~bsel:(Some 0.0) ~error:5.0;
  let traveler = Core.Traveler.create ~het k in
  let s_opens = ref 0 in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open { label; _ } when Xml.Label.name table label = "s" ->
        incr s_opens
      | _ -> ());
  (* All s paths hang below a/c/s, so zeroing it prunes every one. *)
  Alcotest.(check int) "subtree pruned" 0 !s_opens

(* ------------------------------------------------------------------ *)
(* Ablation switches *)

let test_collapse_levels_preserves_totals () =
  let k = Lazy.force paper_kernel in
  let flat = Core.Kernel.collapse_levels k in
  Alcotest.(check int) "vertices" (Core.Kernel.vertex_count k)
    (Core.Kernel.vertex_count flat);
  Alcotest.(check int) "edges" (Core.Kernel.edge_count k)
    (Core.Kernel.edge_count flat);
  (* Every edge's level-0 pair in the collapsed kernel is the sum over all
     levels in the original. *)
  let s_label = label k "s" and p_label = label k "p" in
  let e = Option.get (Core.Kernel.find_edge flat s_label p_label) in
  Alcotest.(check (pair int int)) "(s,p) summed" (8, 14)
    (Core.Kernel.edge_counts e 0);
  Alcotest.(check int) "single level" 1 e.levels;
  Alcotest.(check bool) "collapsed kernel is smaller" true
    (Core.Kernel.size_in_bytes flat < Core.Kernel.size_in_bytes k)

let test_recursion_blind_traveler_terminates () =
  (* A collapsed kernel has self-loops with level-0 mass; the blind traveler
     must still terminate via max_depth. *)
  let k = Lazy.force paper_kernel in
  let flat = Core.Kernel.collapse_levels k in
  let traveler =
    Core.Traveler.create ~card_threshold:0.0 ~recursion_aware:false
      ~max_depth:12 flat
  in
  let opens = ref 0 and max_depth = ref 0 and depth = ref 0 in
  Core.Traveler.iter traveler ~f:(fun event ->
      match event with
      | Core.Traveler.Open _ ->
        incr opens;
        incr depth;
        if !depth > !max_depth then max_depth := !depth
      | Core.Traveler.Close _ -> decr depth
      | Core.Traveler.Eos -> ());
  Alcotest.(check bool) "terminates" true (!opens > 0);
  Alcotest.(check bool) "depth bounded" true (!max_depth <= 12)

let test_recursion_aware_beats_blind () =
  (* On the recursive paper document, //s//s is exact with levels and wrong
     without them. *)
  let k = Lazy.force paper_kernel in
  let flat = Core.Kernel.collapse_levels k in
  let aware = Core.Estimator.create k in
  let blind = Core.Estimator.create ~recursion_aware:false flat in
  let q = Xpath.Parser.parse "//s//s" in
  Alcotest.(check (float 1e-6)) "aware exact" 4.0 (Core.Estimator.estimate aware q);
  let blind_est = Core.Estimator.estimate blind q in
  Alcotest.(check bool)
    (Printf.sprintf "blind differs (%.2f)" blind_est)
    true
    (Float.abs (blind_est -. 4.0) > 0.5)

(* ------------------------------------------------------------------ *)
(* Kernel properties on random documents *)

let gen_doc =
  let open QCheck in
  let labels = [| "a"; "b"; "c" |] in
  let gen rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound (Array.length labels - 1) rand) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 6 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    Buffer.contents buf
  in
  make ~print:(fun d -> d) gen

let prop_child_counts_total =
  (* Observation: summing c_cnt over all levels of edge (u,v) gives the
     number of parent-child pairs (u,v) in the document. *)
  QCheck.Test.make ~count:300 ~name:"kernel child counts sum to edge count" gen_doc
    (fun doc ->
      let tree = Xml.Tree.of_string doc in
      let k = Core.Builder.of_string ~table:tree.table doc in
      (* Count actual parent-child label pairs. *)
      let pairs = Hashtbl.create 16 in
      let rec walk (n : Xml.Tree.node) =
        Array.iter
          (fun (child : Xml.Tree.node) ->
            let key = (n.label, child.label) in
            Hashtbl.replace pairs key
              (1 + Option.value (Hashtbl.find_opt pairs key) ~default:0);
            walk child)
          n.children
      in
      walk tree.root;
      Hashtbl.fold
        (fun (u, v) expected ok ->
          ok
          &&
          match Core.Kernel.find_edge k u v with
          | None -> false
          | Some e ->
            let sum = ref 0 in
            for l = 0 to e.levels - 1 do
              sum := !sum + snd (Core.Kernel.edge_counts e l)
            done;
            !sum = expected)
        pairs true)

let prop_parent_counts_total =
  (* Summing p_cnt over all levels of (u,v) counts the u-nodes having at
     least one v child. *)
  QCheck.Test.make ~count:300 ~name:"kernel parent counts sum to parent count"
    gen_doc (fun doc ->
      let tree = Xml.Tree.of_string doc in
      let k = Core.Builder.of_string ~table:tree.table doc in
      let parents = Hashtbl.create 16 in
      let rec walk (n : Xml.Tree.node) =
        let seen = Hashtbl.create 4 in
        Array.iter
          (fun (child : Xml.Tree.node) ->
            if not (Hashtbl.mem seen child.label) then begin
              Hashtbl.add seen child.label ();
              let key = (n.label, child.label) in
              Hashtbl.replace parents key
                (1 + Option.value (Hashtbl.find_opt parents key) ~default:0)
            end)
          n.children;
        Array.iter walk n.children
      in
      walk tree.root;
      Hashtbl.fold
        (fun (u, v) expected ok ->
          ok
          &&
          match Core.Kernel.find_edge k u v with
          | None -> false
          | Some e ->
            let sum = ref 0 in
            for l = 0 to e.levels - 1 do
              sum := !sum + fst (Core.Kernel.edge_counts e l)
            done;
            !sum = expected)
        parents true)

let prop_serialization_round_trip =
  QCheck.Test.make ~count:200 ~name:"kernel serialization round trip" gen_doc
    (fun doc ->
      let k = Core.Builder.of_string doc in
      Core.Kernel.equal k (Core.Kernel.of_string (Core.Kernel.to_string k)))

let prop_incremental_add =
  (* Adding a fresh-labeled subtree under the root always matches a from-
     scratch build (fresh labels make the connecting-edge assumption hold). *)
  QCheck.Test.make ~count:200 ~name:"incremental add = rebuild" gen_doc (fun doc ->
      let tree = Xml.Tree.of_string doc in
      let root_name = Xml.Label.name tree.table tree.root.label in
      let sub = "<fresh><x1/><x1/></fresh>" in
      let after =
        (* Splice [sub] as the last child of the root. *)
        let body = String.sub doc 0 (String.length doc - (String.length root_name + 3)) in
        body ^ sub ^ "</" ^ root_name ^ ">"
      in
      let k = Core.Builder.of_string ~table:tree.table doc in
      Core.Builder.add_subtree k ~at:[ tree.root.label ] (Xml.Sax.events sub);
      let expected = Core.Builder.of_string ~table:tree.table after in
      Core.Kernel.to_string k = Core.Kernel.to_string expected)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_counter_matches_naive; prop_child_counts_total;
      prop_parent_counts_total; prop_serialization_round_trip;
      prop_incremental_add ]

let () =
  Alcotest.run "core"
    [
      ( "counter_stacks",
        [
          Alcotest.test_case "figure 3" `Quick test_counter_figure3;
          Alcotest.test_case "pop validation" `Quick test_counter_pop_validation;
          Alcotest.test_case "interleaved labels" `Quick test_counter_interleaved;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "example 2 edges" `Quick test_kernel_example2;
          Alcotest.test_case "total children" `Quick test_kernel_total_children;
          Alcotest.test_case "observation 3" `Quick test_kernel_observation3;
          Alcotest.test_case "size" `Quick test_kernel_size_small;
          Alcotest.test_case "serialization" `Quick test_kernel_serialization_round_trip;
          Alcotest.test_case "copy independence" `Quick test_kernel_copy_independent;
          Alcotest.test_case "malformed dump" `Quick test_kernel_of_string_malformed;
        ] );
      ( "builder",
        [
          Alcotest.test_case "add subtree" `Quick test_builder_add_subtree;
          Alcotest.test_case "add recursive subtree" `Quick
            test_builder_add_recursive_subtree;
          Alcotest.test_case "remove subtree" `Quick test_builder_remove_subtree;
          Alcotest.test_case "add/remove round trip" `Quick
            test_builder_add_remove_round_trip;
          Alcotest.test_case "bad subtrees rejected" `Quick
            test_builder_rejects_bad_subtrees;
        ] );
      ( "path_hash",
        [
          Alcotest.test_case "distinct on paper paths" `Quick
            test_path_hash_distinct_on_paper_paths;
          Alcotest.test_case "incremental" `Quick test_path_hash_incremental;
          Alcotest.test_case "order sensitive" `Quick test_path_hash_order_sensitive;
          Alcotest.test_case "branching keys" `Quick test_path_hash_branching_keys;
          Alcotest.test_case "collision rate" `Quick test_path_hash_collision_rate;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "collapse levels" `Quick
            test_collapse_levels_preserves_totals;
          Alcotest.test_case "blind traveler terminates" `Quick
            test_recursion_blind_traveler_terminates;
          Alcotest.test_case "recursion awareness wins" `Quick
            test_recursion_aware_beats_blind;
        ] );
      ( "traveler",
        [
          Alcotest.test_case "het overrides card" `Quick
            test_traveler_het_overrides_card;
          Alcotest.test_case "het zero entry prunes" `Quick
            test_traveler_het_zero_entry_prunes;
          Alcotest.test_case "paper EPT" `Quick test_traveler_ept;
          Alcotest.test_case "balanced events" `Quick test_traveler_balanced;
          Alcotest.test_case "eos stable" `Quick test_traveler_eos_stable;
          Alcotest.test_case "threshold prunes" `Quick test_traveler_threshold_prunes;
          Alcotest.test_case "recursion terminates" `Quick
            test_traveler_recursion_terminates;
          Alcotest.test_case "ept_to_xml" `Quick test_ept_to_xml;
        ] );
      ("properties", props);
    ]
