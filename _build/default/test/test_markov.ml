(* Markov-table baseline tests: exact within its order, classic chaining
   beyond it, and the coverage gap versus XSEED. *)

let parse = Xpath.Parser.parse

let paper_storage = lazy (Nok.Storage.of_string Datagen.Paper_example.document)

let test_counts_within_order () =
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build ~order:2 st in
  let l n = Option.get (Xml.Label.find_opt st.table n) in
  Alcotest.(check int) "f(a)" 1 (Markov.Markov_table.lookup_path_count mt [ l "a" ]);
  Alcotest.(check int) "f(s)" 9 (Markov.Markov_table.lookup_path_count mt [ l "s" ]);
  Alcotest.(check int) "f(p)" 17 (Markov.Markov_table.lookup_path_count mt [ l "p" ]);
  Alcotest.(check int) "f(c,s)" 5
    (Markov.Markov_table.lookup_path_count mt [ l "c"; l "s" ]);
  Alcotest.(check int) "f(s,s)" 4
    (Markov.Markov_table.lookup_path_count mt [ l "s"; l "s" ]);
  Alcotest.(check int) "f(s,p)" 14
    (Markov.Markov_table.lookup_path_count mt [ l "s"; l "p" ]);
  Alcotest.(check int) "absent pair" 0
    (Markov.Markov_table.lookup_path_count mt [ l "a"; l "p" ])

let test_estimate_short_paths_exact () =
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build ~order:2 st in
  let check q expected =
    Alcotest.(check (option (float 1e-9))) q (Some expected)
      (Markov.Markov_table.estimate mt (parse q))
  in
  check "//a/c" 2.0;
  check "//c/s" 5.0;
  check "//s/p" 14.0;
  check "//s/s" 4.0

let test_estimate_chaining () =
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build ~order:2 st in
  (* /a/c/s: f(a,c) * f(c,s)/f(c) = 2 * 5/2 = 5 (actual 5). *)
  Alcotest.(check (option (float 1e-9))) "/a/c/s" (Some 5.0)
    (Markov.Markov_table.estimate mt (parse "/a/c/s"));
  (* /a/c/s/p: 5 * f(s,p)/f(s) = 5 * 14/9 = 7.78 (actual 9: the order-2
     chain conflates recursion levels, the weakness the paper points at). *)
  Alcotest.(check (option (float 1e-6))) "/a/c/s/p"
    (Some (5.0 *. 14.0 /. 9.0))
    (Markov.Markov_table.estimate mt (parse "/a/c/s/p"))

let test_order3_more_accurate () =
  let st = Lazy.force paper_storage in
  let mt2 = Markov.Markov_table.build ~order:2 st in
  let mt3 = Markov.Markov_table.build ~order:3 st in
  let q = parse "/a/c/s/p" in
  let actual = 9.0 in
  let err mt =
    match Markov.Markov_table.estimate mt q with
    | Some e -> Float.abs (e -. actual)
    | None -> Float.infinity
  in
  Alcotest.(check bool) "order 3 at least as good" true (err mt3 <= err mt2);
  Alcotest.(check bool) "order 3 bigger" true
    (Markov.Markov_table.size_in_bytes mt3 > Markov.Markov_table.size_in_bytes mt2)

let test_coverage_gap () =
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build st in
  let unsupported = [ "/a/c[t]/s"; "/a/*"; "//s//s"; "/a/c/s[t][p]" ] in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0))) q None
        (Markov.Markov_table.estimate mt (parse q)))
    unsupported;
  Alcotest.(check bool) "supported linear" true
    (Markov.Markov_table.estimate mt (parse "//c/s/p") <> None)

let test_unknown_label_zero () =
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build st in
  Alcotest.(check (option (float 0.0))) "unknown label" (Some 0.0)
    (Markov.Markov_table.estimate mt (parse "/a/zzz"))

let test_order1 () =
  (* Order-1 tables degenerate to label counts; chains use f(t)/f() which is
     undefined, so estimates reduce to products of label frequencies - the
     coarsest model. Check only that it answers and is exact at length 1. *)
  let st = Lazy.force paper_storage in
  let mt = Markov.Markov_table.build ~order:1 st in
  Alcotest.(check (option (float 1e-9))) "//s exact" (Some 9.0)
    (Markov.Markov_table.estimate mt (parse "//s"));
  Alcotest.(check bool) "longer paths answered" true
    (Markov.Markov_table.estimate mt (parse "//a/c") <> None)

let test_pruning () =
  let st = Lazy.force paper_storage in
  let full = Markov.Markov_table.build ~order:2 st in
  let pruned = Markov.Markov_table.build ~order:2 ~prune_below:3 st in
  Alcotest.(check bool) "pruning shrinks" true
    (Markov.Markov_table.entry_count pruned < Markov.Markov_table.entry_count full);
  let l n = Option.get (Xml.Label.find_opt st.table n) in
  Alcotest.(check int) "rare path dropped" 0
    (Markov.Markov_table.lookup_path_count pruned [ l "a"; l "u" ]);
  Alcotest.(check int) "common path kept" 14
    (Markov.Markov_table.lookup_path_count pruned [ l "s"; l "p" ])

(* Property: within the order, every stored count equals the reference
   evaluator's //-anywhere count of that label chain. *)
let prop_counts_exact =
  let open QCheck in
  let labels = [| "a"; "b"; "c" |] in
  let gen_doc rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound 2 rand) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 4 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    Buffer.contents buf
  in
  Test.make ~count:150 ~name:"order-2 counts = //x/y actuals"
    (make ~print:(fun d -> d) gen_doc)
    (fun doc ->
      let st = Nok.Storage.of_string doc in
      let mt = Markov.Markov_table.build ~order:2 st in
      let ok = ref true in
      Array.iter
        (fun x ->
          Array.iter
            (fun y ->
              let q = Xpath.Parser.parse (Printf.sprintf "//%s/%s" x y) in
              let actual = Nok.Eval.cardinality st q in
              match Markov.Markov_table.estimate mt q with
              | Some e -> if Float.abs (e -. float_of_int actual) > 1e-9 then ok := false
              | None -> ok := false)
            labels)
        labels;
      !ok)

let props = List.map QCheck_alcotest.to_alcotest [ prop_counts_exact ]

let () =
  Alcotest.run "markov"
    [
      ( "table",
        [
          Alcotest.test_case "counts within order" `Quick test_counts_within_order;
          Alcotest.test_case "short paths exact" `Quick test_estimate_short_paths_exact;
          Alcotest.test_case "chaining" `Quick test_estimate_chaining;
          Alcotest.test_case "order 3" `Quick test_order3_more_accurate;
          Alcotest.test_case "coverage gap" `Quick test_coverage_gap;
          Alcotest.test_case "unknown label" `Quick test_unknown_label_zero;
          Alcotest.test_case "order 1" `Quick test_order1;
          Alcotest.test_case "pruning" `Quick test_pruning;
        ] );
      ("properties", props);
    ]
