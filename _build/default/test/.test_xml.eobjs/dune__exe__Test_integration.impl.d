test/test_integration.ml: Alcotest Core Datagen Estimator Float Het Kernel List Nok Pathtree Printf Stats Treesketch Xml Xpath
