test/test_markov.ml: Alcotest Array Buffer Datagen Float Gen Lazy List Markov Nok Option Printf QCheck QCheck_alcotest Test Xml Xpath
