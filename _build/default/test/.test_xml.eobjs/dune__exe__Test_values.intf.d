test/test_values.mli:
