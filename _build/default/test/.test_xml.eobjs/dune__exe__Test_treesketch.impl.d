test/test_treesketch.ml: Alcotest Array Buffer Core Datagen Float Gen Lazy List Nok Printf QCheck QCheck_alcotest String Treesketch Xpath
