test/test_xml.ml: Alcotest Array Buffer Datagen Gen List Option Printf QCheck QCheck_alcotest String Test Xml
