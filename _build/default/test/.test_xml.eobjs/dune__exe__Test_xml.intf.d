test/test_xml.mli:
