test/test_estimator.ml: Alcotest Array Buffer Char Core Datagen Float Gen Lazy List Nok Pathtree Printf QCheck QCheck_alcotest String Xml Xpath
