test/test_pathtree.mli:
