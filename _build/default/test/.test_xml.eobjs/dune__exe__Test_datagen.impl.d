test/test_datagen.ml: Alcotest Datagen Hashtbl Lazy List Nok Option Pathtree Printf String Xml Xpath
