test/test_treesketch.mli:
