test/test_values.ml: Alcotest Ast Buffer Core Datagen Float Lazy List Nok Option Parser Pathtree Printf QCheck QCheck_alcotest Stats Xml Xpath
