test/test_core.ml: Alcotest Array Buffer Core Datagen Float Gen Hashtbl Int Lazy List Nok Option Pathtree Printf QCheck QCheck_alcotest String Test Xml Xpath
