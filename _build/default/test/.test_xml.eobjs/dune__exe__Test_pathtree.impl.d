test/test_pathtree.ml: Alcotest Array Buffer Datagen Gen Lazy List Option Pathtree QCheck QCheck_alcotest String Xml Xpath
