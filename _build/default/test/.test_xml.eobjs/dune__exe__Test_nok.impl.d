test/test_nok.ml: Alcotest Array Buffer Datagen Gen Int Lazy List Nok Printf QCheck QCheck_alcotest String Xml Xpath
