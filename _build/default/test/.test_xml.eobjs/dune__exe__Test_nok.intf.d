test/test_nok.mli:
