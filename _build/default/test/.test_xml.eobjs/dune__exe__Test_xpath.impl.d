test/test_xpath.ml: Alcotest Array Ast Char Classify Datagen Eval_reference Fun Gen Int Lazy List Option Parser Printf QCheck QCheck_alcotest Query_tree String Xpath
