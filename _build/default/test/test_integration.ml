(* End-to-end integration tests: the full pipeline (generate -> parse ->
   kernel + path tree + NoK storage -> HET -> estimate -> compare) on each
   corpus generator, checking the qualitative properties the paper's
   evaluation rests on. *)

let parse = Xpath.Parser.parse

type pipeline = {
  storage : Nok.Storage.t;
  path_tree : Pathtree.Path_tree.t;
  kernel : Core.Kernel.t;
  kernel_only : Core.Estimator.t;
  with_het : Core.Estimator.t;
}

let build ?(card_threshold = 0.5) ?(bsel_threshold = 0.1) doc =
  let table = Xml.Label.create_table () in
  let storage = Nok.Storage.of_string ~table doc in
  let path_tree = Pathtree.Path_tree.of_string ~table doc in
  let kernel = Core.Builder.of_string ~table doc in
  let het, _ =
    Core.Het_builder.build ~bsel_threshold ~card_threshold ~kernel ~path_tree
      ~storage ()
  in
  { storage; path_tree; kernel;
    kernel_only = Core.Estimator.create ~card_threshold kernel;
    with_het = Core.Estimator.create ~card_threshold ~het kernel }

let workload ?(count = 60) p seed =
  let rng = Datagen.Rng.create ~seed in
  Datagen.Workload.all_simple_paths p.path_tree
  @ Datagen.Workload.branching p.path_tree ~rng ~count ()
  @ Datagen.Workload.complex p.path_tree ~rng ~count ()

let summarize p estimator queries =
  Stats.Metrics.summarize
    (List.map
       (fun q ->
         ( Core.Estimator.estimate estimator q,
           float_of_int (Nok.Eval.cardinality p.storage q) ))
       queries)

let test_xmark_pipeline () =
  let p = build (Datagen.Xmark.generate ~seed:31 ~items:60 ()) in
  let queries = workload p 1 in
  let kernel_s = summarize p p.kernel_only queries in
  let het_s = summarize p p.with_het queries in
  Alcotest.(check bool)
    (Printf.sprintf "HET not worse (%.2f vs %.2f)" het_s.rmse kernel_s.rmse)
    true
    (het_s.rmse <= kernel_s.rmse +. 1e-6);
  Alcotest.(check bool)
    (Printf.sprintf "reasonable accuracy (NRMSE %.1f%%)" (100. *. het_s.nrmse))
    true (het_s.nrmse < 0.5);
  (* SP queries are exact with the full HET. *)
  let sp = Datagen.Workload.all_simple_paths p.path_tree in
  let sp_s = summarize p p.with_het sp in
  Alcotest.(check (float 1e-6)) "SP exact with HET" 0.0 sp_s.rmse

let test_dblp_pipeline () =
  let p = build (Datagen.Dblp.generate ~seed:32 ~records:400 ()) in
  let queries = workload p 2 in
  let kernel_s = summarize p p.kernel_only queries in
  let het_s = summarize p p.with_het queries in
  Alcotest.(check bool)
    (Printf.sprintf "HET improves markedly (%.2f -> %.2f)" kernel_s.rmse het_s.rmse)
    true
    (het_s.rmse < kernel_s.rmse *. 0.8);
  Alcotest.(check bool) "order mostly preserved" true (het_s.opd > 0.9)

let test_treebank_pipeline () =
  let p =
    build ~card_threshold:4.0 ~bsel_threshold:0.001
      (Datagen.Treebank.generate ~seed:33 ~sentences:150 ())
  in
  let queries = workload p 3 in
  let het_s = summarize p p.with_het queries in
  (* Recursive data is genuinely hard; just require sanity and boundedness. *)
  Alcotest.(check bool) "finite" true (Float.is_finite het_s.rmse);
  Alcotest.(check bool)
    (Printf.sprintf "OPD reasonable (%.2f)" het_s.opd)
    true (het_s.opd > 0.7);
  (* Recursive queries benefit from the recursion-aware kernel, provided the
     traveler is not pruning (threshold 0.5, unlike the workload run above
     which uses the paper's Treebank setting). *)
  let unpruned = Core.Estimator.create ~card_threshold:0.5 p.kernel in
  let q = parse "//NP//NP" in
  let est = Core.Estimator.estimate unpruned q in
  let actual = float_of_int (Nok.Eval.cardinality p.storage q) in
  Alcotest.(check bool)
    (Printf.sprintf "//NP//NP within 2x (est %.0f actual %.0f)" est actual)
    true
    (est > actual /. 2.0 && est < actual *. 2.0)

let test_estimation_deterministic () =
  let doc = Datagen.Xmark.generate ~seed:34 ~items:30 () in
  let p1 = build doc and p2 = build doc in
  let queries = workload p1 4 in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Xpath.Ast.to_string q)
        (Core.Estimator.estimate p1.with_het q)
        (Core.Estimator.estimate p2.with_het q))
    queries

let test_shared_ept_equals_fresh () =
  let p = build (Datagen.Xmark.generate ~seed:35 ~items:30 ()) in
  let ept = Core.Estimator.ept p.with_het in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Xpath.Ast.to_string q)
        (Core.Estimator.estimate p.with_het q)
        (Core.Estimator.estimate_on p.with_het ept q))
    (workload ~count:20 p 5)

let test_xseed_beats_treesketch_on_recursive () =
  (* The Table 3 headline at miniature scale: same budget, recursive data,
     combined workload; XSEED's RMSE must be lower. *)
  let doc = Datagen.Treebank.generate ~seed:36 ~sentences:250 () in
  let p = build ~card_threshold:4.0 ~bsel_threshold:0.001 doc in
  let budget = 4096 in
  let sketch, _ = Treesketch.Sketch.build ~budget_bytes:budget p.storage in
  Core.(
    match Estimator.het p.with_het with
    | Some het ->
      Het.set_budget het ~bytes:(max 0 (budget - Kernel.size_in_bytes p.kernel))
    | None -> ());
  let queries = workload p 6 in
  let xseed = summarize p p.with_het queries in
  let ts =
    Stats.Metrics.summarize
      (List.map
         (fun q ->
           ( Treesketch.Sketch.estimate ~card_threshold:4.0 ~max_depth:24 sketch q,
             float_of_int (Nok.Eval.cardinality p.storage q) ))
         queries)
  in
  Alcotest.(check bool)
    (Printf.sprintf "XSEED %.1f < TreeSketch %.1f" xseed.rmse ts.rmse)
    true (xseed.rmse < ts.rmse)

let test_cli_synopsis_file_round_trip () =
  (* Exercise the bundled file format through the library API the CLI uses. *)
  let doc = Datagen.Xmark.generate ~seed:37 ~items:20 () in
  let syn = Core.Synopsis.build doc in
  let reloaded = Core.Synopsis.of_string (Core.Synopsis.to_string syn) in
  let p = Nok.Storage.of_string doc in
  List.iter
    (fun q ->
      let expected = Core.Synopsis.estimate syn q in
      Alcotest.(check (float 1e-9)) q expected (Core.Synopsis.estimate reloaded q);
      ignore (Nok.Eval.cardinality p (parse q) : int))
    [ "/site/regions"; "//item[shipping]/location"; "//person//age";
      "/site/open_auctions/open_auction/bidder" ]

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "xmark" `Quick test_xmark_pipeline;
          Alcotest.test_case "dblp" `Quick test_dblp_pipeline;
          Alcotest.test_case "treebank" `Quick test_treebank_pipeline;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "deterministic" `Quick test_estimation_deterministic;
          Alcotest.test_case "shared EPT" `Quick test_shared_ept_equals_fresh;
          Alcotest.test_case "beats treesketch on recursion" `Quick
            test_xseed_beats_treesketch_on_recursive;
          Alcotest.test_case "synopsis file round trip" `Quick
            test_cli_synopsis_file_round_trip;
        ] );
    ]
