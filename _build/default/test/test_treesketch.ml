(* TreeSketch baseline tests: the perfect (count-stable) partition must be
   exact for twig counting; budgeted sketches must fit their budget and
   degrade gracefully; the work cutoff must reproduce the paper's DNF. *)

let parse = Xpath.Parser.parse

let paper_storage = lazy (Nok.Storage.of_string Datagen.Paper_example.document)

let perfect () = fst (Treesketch.Sketch.build (Lazy.force paper_storage))

let test_perfect_partition_size () =
  let sketch, stats = Treesketch.Sketch.build (Lazy.force paper_storage) in
  Alcotest.(check bool) "completed" true stats.completed;
  Alcotest.(check int) "no merges without budget" 0 stats.merges;
  Alcotest.(check int) "classes = initial" stats.initial_classes
    (Treesketch.Sketch.class_count sketch);
  (* Count-stable classes are at least as numerous as labels, at most as
     numerous as nodes. *)
  Alcotest.(check bool) "class count sane" true
    (stats.initial_classes >= 6 && stats.initial_classes <= 36)

let test_perfect_exact_simple () =
  let sketch = perfect () in
  let storage = Lazy.force paper_storage in
  List.iter
    (fun q ->
      let actual = float_of_int (Nok.Eval.cardinality storage (parse q)) in
      Alcotest.(check (float 1e-6)) q actual
        (Treesketch.Sketch.estimate sketch (parse q)))
    [ "/a"; "/a/c"; "/a/c/s"; "/a/c/s/s"; "/a/c/s/s/t"; "/a/c/s/p"; "/a/t";
      "//s"; "//p"; "//s//s"; "//s//s//p"; "/a/c/s/s/s/p" ]

let test_perfect_exact_branching () =
  let sketch = perfect () in
  let storage = Lazy.force paper_storage in
  List.iter
    (fun q ->
      let actual = float_of_int (Nok.Eval.cardinality storage (parse q)) in
      Alcotest.(check (float 1e-6)) q actual
        (Treesketch.Sketch.estimate sketch (parse q)))
    [ "/a/c[t]/s"; "/a/c/s[t]/p"; "/a/c/s[s]/p"; "/a/c[s/s]/t"; "//s[t]/p" ]

let test_budgeted_fits () =
  let storage = Lazy.force paper_storage in
  let full, _ = Treesketch.Sketch.build storage in
  let budget = Treesketch.Sketch.size_in_bytes full / 2 in
  let sketch, stats = Treesketch.Sketch.build ~budget_bytes:budget storage in
  Alcotest.(check bool) "completed" true stats.completed;
  Alcotest.(check bool) "merged" true (stats.merges > 0);
  Alcotest.(check bool) "fits budget" true
    (Treesketch.Sketch.size_in_bytes sketch <= budget);
  (* Estimates remain finite and sane. *)
  let e = Treesketch.Sketch.estimate sketch (parse "//s") in
  Alcotest.(check bool) "finite" true (Float.is_finite e && e >= 0.0)

let test_dnf_cutoff () =
  let storage = Lazy.force paper_storage in
  let _, stats = Treesketch.Sketch.build ~budget_bytes:16 ~max_work:3 storage in
  Alcotest.(check bool) "did not finish" false stats.completed

let test_budget_unreachable_stops () =
  (* A budget smaller than one class per label can never be reached by
     same-label merging; construction must stop anyway. *)
  let storage = Lazy.force paper_storage in
  let sketch, _stats = Treesketch.Sketch.build ~budget_bytes:8 storage in
  Alcotest.(check bool) "still answers" true
    (Float.is_finite (Treesketch.Sketch.estimate sketch (parse "//s")))

let test_recursion_blindness () =
  (* After heavy merging, a recursive document's sketch conflates recursion
     levels: //s//s deteriorates while XSEED's kernel stays exact. This is
     the qualitative Table 3 claim. *)
  let storage = Lazy.force paper_storage in
  let sketch, _ = Treesketch.Sketch.build ~budget_bytes:150 storage in
  let kernel = Core.Builder.of_string Datagen.Paper_example.document in
  let xseed = Core.Estimator.create kernel in
  let q = parse "//s//s" in
  let actual = float_of_int (Nok.Eval.cardinality storage q) in
  let xseed_err = Float.abs (Core.Estimator.estimate xseed q -. actual) in
  let ts_err = Float.abs (Treesketch.Sketch.estimate sketch q -. actual) in
  Alcotest.(check (float 1e-6)) "xseed exact on //s//s" 0.0 xseed_err;
  Alcotest.(check bool)
    (Printf.sprintf "budgeted treesketch errs (err %.2f)" ts_err)
    true (ts_err > 0.0)

(* Property: the perfect sketch is exact on random documents for a spread of
   query shapes (it is a lossless structural summary). *)
let gen_doc_and_query =
  let open QCheck in
  let labels = [| "a"; "b"; "c" |] in
  let gen rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound 2 rand) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 4 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    let doc = Buffer.contents buf in
    let test () =
      if Gen.int_bound 5 rand = 0 then "*" else labels.(Gen.int_bound 2 rand)
    in
    let axis () = if Gen.int_bound 2 rand = 0 then "//" else "/" in
    let n = 1 + Gen.int_bound 2 rand in
    let q =
      String.concat ""
        (List.init n (fun i ->
             axis () ^ test ()
             ^ (if i > 0 && Gen.int_bound 2 rand = 0 then "[" ^ test () ^ "]" else "")))
    in
    (doc, q)
  in
  make ~print:(fun (d, q) -> Printf.sprintf "doc=%s q=%s" d q) gen

let prop_perfect_exact =
  QCheck.Test.make ~count:300 ~name:"perfect sketch = NoK on random docs"
    gen_doc_and_query (fun (doc, q) ->
      let storage = Nok.Storage.of_string doc in
      let sketch, _ = Treesketch.Sketch.build storage in
      let path = parse q in
      let actual = float_of_int (Nok.Eval.cardinality storage path) in
      let est =
        Treesketch.Sketch.estimate ~card_threshold:0.0 ~max_depth:64 sketch path
      in
      if Float.abs (est -. actual) > 1e-6 *. Float.max 1.0 actual then
        QCheck.Test.fail_reportf "estimate %f <> actual %f" est actual
      else true)

let props = List.map QCheck_alcotest.to_alcotest [ prop_perfect_exact ]

let () =
  Alcotest.run "treesketch"
    [
      ( "perfect",
        [
          Alcotest.test_case "partition size" `Quick test_perfect_partition_size;
          Alcotest.test_case "exact simple" `Quick test_perfect_exact_simple;
          Alcotest.test_case "exact branching" `Quick test_perfect_exact_branching;
        ] );
      ( "budgeted",
        [
          Alcotest.test_case "fits budget" `Quick test_budgeted_fits;
          Alcotest.test_case "dnf cutoff" `Quick test_dnf_cutoff;
          Alcotest.test_case "unreachable budget" `Quick test_budget_unreachable_stops;
          Alcotest.test_case "recursion blindness" `Quick test_recursion_blindness;
        ] );
      ("properties", props);
    ]
