(* Tests for the path tree: exact simple-path cardinalities, backward
   selectivities, enumeration, and agreement with the reference evaluator. *)

let paper_tree = lazy (Pathtree.Path_tree.of_string Datagen.Paper_example.document)

let labels_of t names =
  List.map (fun n -> Option.get (Xml.Label.find_opt t.Pathtree.Path_tree.table n)) names

let test_size () =
  let t = Lazy.force paper_tree in
  Alcotest.(check int) "14 distinct rooted paths" 14 (Pathtree.Path_tree.size t)

let test_cardinalities () =
  let t = Lazy.force paper_tree in
  let check names expected =
    Alcotest.(check int)
      (String.concat "/" names)
      expected
      (Pathtree.Path_tree.cardinality_of_labels t (labels_of t names))
  in
  check [ "a" ] 1;
  check [ "a"; "c" ] 2;
  check [ "a"; "c"; "s" ] 5;
  check [ "a"; "c"; "s"; "s" ] 2;
  check [ "a"; "c"; "s"; "s"; "s" ] 2;
  check [ "a"; "c"; "s"; "s"; "t" ] 1;
  check [ "a"; "c"; "s"; "p" ] 9;
  check [ "a"; "c"; "s"; "s"; "s"; "p" ] 3;
  check [ "a"; "t" ] 1;
  check [ "a"; "u" ] 1

let test_missing_path () =
  let t = Lazy.force paper_tree in
  Alcotest.(check int) "absent path" 0
    (Pathtree.Path_tree.cardinality_of_labels t (labels_of t [ "a"; "s" ]));
  Alcotest.(check bool) "find_path returns None" true
    (Pathtree.Path_tree.find_path t (labels_of t [ "c" ]) = None)

let test_bsel () =
  let t = Lazy.force paper_tree in
  let find names = Option.get (Pathtree.Path_tree.find_path t (labels_of t names)) in
  let parent names = Some (find names) in
  (* Of the 5 a/c/s nodes, 2 have a t child. *)
  Alcotest.(check (float 1e-9)) "bsel(a/c/s/t)" 0.4
    (Pathtree.Path_tree.bsel t ~parent:(parent [ "a"; "c"; "s" ])
       (find [ "a"; "c"; "s"; "t" ]));
  (* All 5 have a p child. *)
  Alcotest.(check (float 1e-9)) "bsel(a/c/s/p)" 1.0
    (Pathtree.Path_tree.bsel t ~parent:(parent [ "a"; "c"; "s" ])
       (find [ "a"; "c"; "s"; "p" ]));
  (* 2 of 5 have an s child. *)
  Alcotest.(check (float 1e-9)) "bsel(a/c/s/s)" 0.4
    (Pathtree.Path_tree.bsel t ~parent:(parent [ "a"; "c"; "s" ])
       (find [ "a"; "c"; "s"; "s" ]));
  (* 1 of the 2 a/c/s/s nodes has a t child. *)
  Alcotest.(check (float 1e-9)) "bsel(a/c/s/s/t)" 0.5
    (Pathtree.Path_tree.bsel t ~parent:(parent [ "a"; "c"; "s"; "s" ])
       (find [ "a"; "c"; "s"; "s"; "t" ]));
  Alcotest.(check (float 1e-9)) "root bsel" 1.0
    (Pathtree.Path_tree.bsel t ~parent:None t.root)

let test_simple_path_cardinality () =
  let t = Lazy.force paper_tree in
  let check q expected =
    Alcotest.(check (option int)) q expected
      (Pathtree.Path_tree.simple_path_cardinality t (Xpath.Parser.parse q))
  in
  check "/a/c/s" (Some 5);
  check "/a/c/s/s/t" (Some 1);
  check "/a/zzz" (Some 0);
  check "//a/c" None;
  check "/a/c[t]" None;
  check "/a/*" None

let test_all_simple_paths () =
  let t = Lazy.force paper_tree in
  let paths = Pathtree.Path_tree.all_simple_paths t in
  Alcotest.(check int) "count" 14 (List.length paths);
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 paths in
  Alcotest.(check int) "cardinalities sum to node count" 36 total;
  (* First enumerated path is the root. *)
  (match paths with
   | (root_path, c) :: _ ->
     Alcotest.(check int) "root path length" 1 (List.length root_path);
     Alcotest.(check int) "root card" 1 c
   | [] -> Alcotest.fail "no paths")

let test_depth () =
  Alcotest.(check int) "depth" 6 (Pathtree.Path_tree.depth (Lazy.force paper_tree))

(* Property: path tree cardinality of every enumerated path agrees with the
   reference evaluator run on the same document. *)
let gen_doc =
  let open QCheck in
  let labels = [| "a"; "b"; "c" |] in
  let gen rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound (Array.length labels - 1) rand) in
      Buffer.add_string buf ("<" ^ l ^ ">");
      if depth < 5 then
        for _ = 1 to Gen.int_bound 3 rand do node (depth + 1) done;
      Buffer.add_string buf ("</" ^ l ^ ">")
    in
    node 0;
    Buffer.contents buf
  in
  make ~print:(fun d -> d) gen

let prop_cardinalities_exact =
  QCheck.Test.make ~count:200 ~name:"path tree cards = reference eval" gen_doc
    (fun doc ->
      let tree = Xml.Tree.of_string doc in
      let pt = Pathtree.Path_tree.of_string doc in
      let idx = Xpath.Eval_reference.index tree in
      let ok = ref true in
      Pathtree.Path_tree.iter_paths pt ~f:(fun labels ~parent:_ node ->
          let steps =
            List.map
              (fun l ->
                { Xpath.Ast.axis = Xpath.Ast.Child;
                  test = Xpath.Ast.Name (Xml.Label.name pt.table l);
                  predicates = []; value_predicates = [] })
              labels
          in
          let actual = Xpath.Eval_reference.cardinality idx steps in
          if actual <> node.cardinality then ok := false);
      !ok)

let prop_parents_bound =
  QCheck.Test.make ~count:200
    ~name:"parents_with_child <= min(parent card, own card)" gen_doc (fun doc ->
      let pt = Pathtree.Path_tree.of_string doc in
      let ok = ref true in
      Pathtree.Path_tree.iter_paths pt ~f:(fun _ ~parent node ->
          match parent with
          | None -> if node.parents_with_child <> 1 then ok := false
          | Some p ->
            if
              node.parents_with_child > p.cardinality
              || node.parents_with_child > node.cardinality
              || node.parents_with_child < 1
            then ok := false);
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_cardinalities_exact; prop_parents_bound ]

let () =
  Alcotest.run "pathtree"
    [
      ( "paper example",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "cardinalities" `Quick test_cardinalities;
          Alcotest.test_case "missing paths" `Quick test_missing_path;
          Alcotest.test_case "backward selectivity" `Quick test_bsel;
          Alcotest.test_case "simple_path_cardinality" `Quick
            test_simple_path_cardinality;
          Alcotest.test_case "all_simple_paths" `Quick test_all_simple_paths;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ("properties", props);
    ]
