(* Tests for the NoK substrate: interval storage shape, evaluator
   correctness against the naive reference evaluator, and edge cases. *)

let paper_doc = Datagen.Paper_example.document

let storage = lazy (Nok.Storage.of_string paper_doc)
let ref_idx = lazy (Xpath.Eval_reference.index (Datagen.Paper_example.tree ()))

let card q = Nok.Eval.cardinality (Lazy.force storage) (Xpath.Parser.parse q)

(* ------------------------------------------------------------------ *)
(* Storage *)

let test_storage_shape () =
  let st = Nok.Storage.of_string "<a><b><c/><d/></b><e/></a>" in
  Alcotest.(check int) "node count" 5 (Nok.Storage.node_count st);
  let name i = Xml.Label.name st.table st.labels.(i) in
  Alcotest.(check (list string)) "preorder labels" [ "a"; "b"; "c"; "d"; "e" ]
    (List.init 5 name);
  Alcotest.(check (list int)) "last descendants" [ 4; 3; 2; 3; 4 ]
    (Array.to_list st.last);
  Alcotest.(check (list int)) "depths" [ 0; 1; 2; 2; 1 ] (Array.to_list st.depth)

let test_storage_children () =
  let st = Nok.Storage.of_string "<a><b><c/><d/></b><e/></a>" in
  Alcotest.(check (list int)) "children of root" [ 1; 4 ] (Nok.Storage.children st 0);
  Alcotest.(check (list int)) "children of b" [ 2; 3 ] (Nok.Storage.children st 1);
  Alcotest.(check (list int)) "leaf" [] (Nok.Storage.children st 2)

let test_storage_parent () =
  let st = Nok.Storage.of_string "<a><b><c/><d/></b><e/></a>" in
  Alcotest.(check (option int)) "root" None (Nok.Storage.parent st 0);
  Alcotest.(check (option int)) "c's parent" (Some 1) (Nok.Storage.parent st 2);
  Alcotest.(check (option int)) "e's parent" (Some 0) (Nok.Storage.parent st 4)

let test_storage_of_tree_agrees () =
  let via_string = Nok.Storage.of_string paper_doc in
  let via_tree = Nok.Storage.of_tree (Datagen.Paper_example.tree ()) in
  Alcotest.(check (array int)) "last arrays agree" via_string.last via_tree.last;
  Alcotest.(check (array int)) "depth arrays agree" via_string.depth via_tree.depth;
  Alcotest.(check int) "counts agree"
    (Nok.Storage.node_count via_string)
    (Nok.Storage.node_count via_tree)

let test_storage_rejects_unbalanced () =
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Nok.Storage: unbalanced events") (fun () ->
      ignore (Nok.Storage.of_events [ Xml.Event.End_element "a" ]))

(* ------------------------------------------------------------------ *)
(* Evaluator on the paper example: same oracle values as the reference
   evaluator tests, independently computed here. *)

let test_eval_paper_values () =
  let check q expected = Alcotest.(check int) q expected (card q) in
  check "/a" 1;
  check "/a/c/s" 5;
  check "/a/c/s/s/t" 1;
  check "//s" 9;
  check "//s//s" 4;
  check "//s//s//p" 5;
  check "/a/c/s[t]/p" 4;
  check "/a/c[s[t]]/p" 1;
  check "//s[t]/p" 6;
  check "//*[t]" 6;
  check "/b" 0;
  check "//*" 36

let test_eval_select_matches_reference () =
  let queries = [ "//s"; "/a/c/s/p"; "//s[t]/p"; "/a/*" ] in
  List.iter
    (fun q ->
      let nok = Nok.Eval.select (Lazy.force storage) (Xpath.Parser.parse q) in
      (* Preorder ids in reference are 1-based (0 = virtual doc node). *)
      let reference =
        List.map (fun i -> i - 1)
          (Xpath.Eval_reference.select (Lazy.force ref_idx) (Xpath.Parser.parse q))
      in
      Alcotest.(check (list int)) q reference nok)
    queries

let test_eval_root_semantics () =
  (* '/x' must anchor at the document root; '//x' must not. *)
  let st = Nok.Storage.of_string "<a><a/></a>" in
  Alcotest.(check int) "/a" 1 (Nok.Eval.cardinality st (Xpath.Parser.parse "/a"));
  Alcotest.(check int) "//a" 2 (Nok.Eval.cardinality st (Xpath.Parser.parse "//a"));
  Alcotest.(check int) "/a/a" 1 (Nok.Eval.cardinality st (Xpath.Parser.parse "/a/a"));
  Alcotest.(check int) "//a/a" 1 (Nok.Eval.cardinality st (Xpath.Parser.parse "//a/a"));
  Alcotest.(check int) "//a//a" 1 (Nok.Eval.cardinality st (Xpath.Parser.parse "//a//a"))

let test_eval_unknown_label () =
  Alcotest.(check int) "unknown name" 0 (card "/zzz");
  Alcotest.(check int) "unknown in predicate" 0 (card "/a[zzz]")

let test_eval_query_too_large () =
  let deep = "/" ^ String.concat "/" (List.init 70 (fun i -> Printf.sprintf "x%d" i)) in
  Alcotest.check_raises "too large" Nok.Eval.Query_too_large (fun () ->
      ignore (card deep))

let test_eval_single_node_doc () =
  let st = Nok.Storage.of_string "<only/>" in
  let c q = Nok.Eval.cardinality st (Xpath.Parser.parse q) in
  Alcotest.(check int) "/only" 1 (c "/only");
  Alcotest.(check int) "//only" 1 (c "//only");
  Alcotest.(check int) "/only/x" 0 (c "/only/x");
  Alcotest.(check int) "/*" 1 (c "/*")

let test_eval_deep_document () =
  (* Very deep documents exercise the explicit stacks, not OCaml's. *)
  let depth = 50_000 in
  let buf = Buffer.create (depth * 8) in
  for _ = 1 to depth do Buffer.add_string buf "<d>" done;
  Buffer.add_string buf "<leaf/>";
  for _ = 1 to depth do Buffer.add_string buf "</d>" done;
  let st = Nok.Storage.of_string (Buffer.contents buf) in
  Alcotest.(check int) "//leaf" 1
    (Nok.Eval.cardinality st (Xpath.Parser.parse "//leaf"));
  Alcotest.(check int) "//d//leaf" 1
    (Nok.Eval.cardinality st (Xpath.Parser.parse "//d//leaf"));
  Alcotest.(check int) "//d" depth
    (Nok.Eval.cardinality st (Xpath.Parser.parse "//d"))

let test_eval_wildcard_with_value_pred () =
  let st =
    Nok.Storage.of_string ~with_values:true
      "<r><x><v>5</v></x><y><v>50</v></y><z><w>5</w></z></r>"
  in
  Alcotest.(check int) "//*[v>10]" 1
    (Nok.Eval.cardinality st (Xpath.Parser.parse "//*[v>10]"));
  Alcotest.(check int) "//*[v<10]" 1
    (Nok.Eval.cardinality st (Xpath.Parser.parse "//*[v<10]"))

(* ------------------------------------------------------------------ *)
(* Differential property: NoK = reference evaluator on random documents
   and random queries. This is the load-bearing correctness argument for
   using NoK as ground truth everywhere else. *)

let gen_doc_and_query =
  let open QCheck in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let gen_doc rand =
    let buf = Buffer.create 256 in
    let rec node depth =
      let l = labels.(Gen.int_bound (Array.length labels - 1) rand) in
      Buffer.add_string buf "<";
      Buffer.add_string buf l;
      Buffer.add_string buf ">";
      if depth < 5 then begin
        let n = Gen.int_bound 3 rand in
        for _ = 1 to n do node (depth + 1) done
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf l;
      Buffer.add_string buf ">"
    in
    node 0;
    Buffer.contents buf
  in
  let gen_query rand =
    let gen_test () =
      if Gen.int_bound 6 rand = 0 then "*"
      else labels.(Gen.int_bound (Array.length labels - 1) rand)
    in
    let gen_axis () = if Gen.int_bound 2 rand = 0 then "//" else "/" in
    let rec gen_steps depth len =
      if len = 0 then ""
      else
        let preds =
          if depth >= 1 || Gen.int_bound 2 rand > 0 then ""
          else "[" ^ gen_test () ^ gen_steps (depth + 1) (Gen.int_bound 1 rand) ^ "]"
        in
        gen_axis () ^ gen_test () ^ preds ^ gen_steps depth (len - 1)
    in
    gen_axis () ^ gen_test () ^ gen_steps 0 (Gen.int_bound 3 rand)
  in
  make
    ~print:(fun (d, q) -> Printf.sprintf "doc=%s query=%s" d q)
    (fun rand -> (gen_doc rand, gen_query rand))

let prop_nok_matches_reference =
  QCheck.Test.make ~count:1000 ~name:"NoK cardinality = reference cardinality"
    gen_doc_and_query (fun (doc, query) ->
      let path = Xpath.Parser.parse query in
      let tree = Xml.Tree.of_string doc in
      let expected = Xpath.Eval_reference.cardinality (Xpath.Eval_reference.index tree) path in
      let got = Nok.Eval.cardinality (Nok.Storage.of_tree tree) path in
      if expected <> got then
        QCheck.Test.fail_reportf "expected %d, nok got %d" expected got
      else true)

let prop_select_ids_valid =
  QCheck.Test.make ~count:300 ~name:"select returns sorted distinct valid ids"
    gen_doc_and_query (fun (doc, query) ->
      let st = Nok.Storage.of_string doc in
      let ids = Nok.Eval.select st (Xpath.Parser.parse query) in
      let n = Nok.Storage.node_count st in
      List.for_all (fun i -> i >= 0 && i < n) ids
      && List.sort_uniq Int.compare ids = ids)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_nok_matches_reference; prop_select_ids_valid ]

let () =
  Alcotest.run "nok"
    [
      ( "storage",
        [
          Alcotest.test_case "shape" `Quick test_storage_shape;
          Alcotest.test_case "children" `Quick test_storage_children;
          Alcotest.test_case "parent" `Quick test_storage_parent;
          Alcotest.test_case "of_tree agrees" `Quick test_storage_of_tree_agrees;
          Alcotest.test_case "unbalanced rejected" `Quick test_storage_rejects_unbalanced;
        ] );
      ( "eval",
        [
          Alcotest.test_case "paper values" `Quick test_eval_paper_values;
          Alcotest.test_case "select matches reference" `Quick
            test_eval_select_matches_reference;
          Alcotest.test_case "root semantics" `Quick test_eval_root_semantics;
          Alcotest.test_case "unknown labels" `Quick test_eval_unknown_label;
          Alcotest.test_case "query too large" `Quick test_eval_query_too_large;
          Alcotest.test_case "single node doc" `Quick test_eval_single_node_doc;
          Alcotest.test_case "deep document" `Quick test_eval_deep_document;
          Alcotest.test_case "wildcard + value pred" `Quick
            test_eval_wildcard_with_value_pred;
        ] );
      ("properties", props);
    ]
