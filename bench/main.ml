(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the seeded synthetic analogues of its corpora.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table2       -- one section
     dune exec bench/main.exe -- --quick all  -- reduced scales

   Sections: table2 table3 fig5 fig6 sec64 ablation values feedback
   telemetry parallel json micro.
   Absolute numbers differ from the paper (different hardware, generated
   corpora); the shapes under test are listed in DESIGN.md §7 and the
   measured-vs-paper comparison is recorded in EXPERIMENTS.md. *)

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let scale q f = if quick then q else f

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pf fmt = Printf.printf fmt

let header title =
  pf "\n==========================================================\n";
  pf "%s\n" title;
  pf "==========================================================\n"

(* ------------------------------------------------------------------ *)
(* Datasets: seeded analogues of the paper's corpora (substitutions are
   documented in DESIGN.md §2). *)

type dataset = {
  name : string;
  doc : string Lazy.t;
  storage : Nok.Storage.t Lazy.t;
  path_tree : Pathtree.Path_tree.t Lazy.t;
  kernel : Core.Kernel.t Lazy.t;
  table : Xml.Label.table;
  card_threshold : float;  (* paper: 20 for Treebank, small otherwise *)
  bsel_threshold : float;  (* paper: 0.001 for Treebank, 0.1 otherwise *)
  paper_row : string;  (* the corresponding Table 2 row, for reference *)
}

let make_dataset name ~card_threshold ~bsel_threshold ~paper_row gen =
  let table = Xml.Label.create_table () in
  let doc = lazy (gen ()) in
  let storage = lazy (Nok.Storage.of_string ~table (Lazy.force doc)) in
  let path_tree = lazy (Pathtree.Path_tree.of_string ~table (Lazy.force doc)) in
  let kernel = lazy (Core.Builder.of_string ~table (Lazy.force doc)) in
  { name; doc; storage; path_tree; kernel; table; card_threshold;
    bsel_threshold; paper_row }

let dblp =
  make_dataset "DBLP" ~card_threshold:0.5 ~bsel_threshold:0.1
    ~paper_row:"169MB, 4.02M nodes, rl 0/1, kernel 2.8KB"
    (fun () -> Datagen.Dblp.generate ~seed:101 ~records:(scale 1000 8000) ())

let xmark10 =
  make_dataset "XMark10" ~card_threshold:0.5 ~bsel_threshold:0.1
    ~paper_row:"11MB, 168K nodes, rl 0.04/1, kernel 2.7KB"
    (fun () -> Datagen.Xmark.generate ~seed:102 ~items:(scale 60 1200) ())

let xmark100 =
  make_dataset "XMark100" ~card_threshold:0.5 ~bsel_threshold:0.1
    ~paper_row:"116MB, 1.67M nodes, rl 0.04/1, kernel 2.7KB"
    (fun () -> Datagen.Xmark.generate ~seed:102 ~items:(scale 600 12000) ())

let treebank05 =
  make_dataset "Treebank.05" ~card_threshold:20.0 ~bsel_threshold:0.001
    ~paper_row:"3.4MB, 121K nodes, rl 1.3/8, kernel 24.2KB"
    (fun () -> Datagen.Treebank.generate ~seed:103 ~sentences:(scale 250 1200) ())

let treebank =
  make_dataset "Treebank" ~card_threshold:20.0 ~bsel_threshold:0.001
    ~paper_row:"86MB, 2.44M nodes, rl 1.3/10, kernel 72.7KB"
    (fun () -> Datagen.Treebank.generate ~seed:103 ~sentences:(scale 2500 24000) ())

let table3_datasets = [ dblp; xmark10; xmark100; treebank05 ]
let all_datasets = table3_datasets @ [ treebank ]

(* ------------------------------------------------------------------ *)
(* Workloads (paper §6.1): all SP queries + random BP and CP queries. *)

let workload_count = scale 80 300

let sp_queries ds = Datagen.Workload.all_simple_paths (Lazy.force ds.path_tree)

let bp_queries ?(mbp = 1) ?(count = workload_count) ds =
  let rng = Datagen.Rng.create ~seed:7001 in
  Datagen.Workload.branching (Lazy.force ds.path_tree) ~rng ~count ~mbp ()

let cp_queries ?(mbp = 1) ?(count = workload_count) ds =
  let rng = Datagen.Rng.create ~seed:7002 in
  Datagen.Workload.complex (Lazy.force ds.path_tree) ~rng ~count ~mbp ()

let combined ds = sp_queries ds @ bp_queries ds @ cp_queries ds

(* Ground-truth cache: NoK evaluation per (dataset, query). *)
let actual_cache : (string * string, float) Hashtbl.t = Hashtbl.create 4096

let actual ds q =
  let key = (ds.name, Xpath.Ast.to_string q) in
  match Hashtbl.find_opt actual_cache key with
  | Some a -> a
  | None ->
    let a = float_of_int (Nok.Eval.cardinality (Lazy.force ds.storage) q) in
    Hashtbl.add actual_cache key a;
    a

(* HET cache: 1BP HETs are reused across sections. *)
let het_cache : (string, Core.Het.t * Core.Het_builder.stats * float) Hashtbl.t =
  Hashtbl.create 8

let het_1bp ds =
  match Hashtbl.find_opt het_cache ds.name with
  | Some entry -> entry
  | None ->
    let (het, stats), seconds =
      time (fun () ->
          Core.Het_builder.build ~mbp:1 ~bsel_threshold:ds.bsel_threshold
            ~card_threshold:ds.card_threshold ~kernel:(Lazy.force ds.kernel)
            ~path_tree:(Lazy.force ds.path_tree)
            ~storage:(Lazy.force ds.storage) ())
    in
    Hashtbl.add het_cache ds.name (het, stats, seconds);
    (het, stats, seconds)

let summarize_pairs ds estimator_fn queries =
  Stats.Metrics.summarize
    (List.map (fun q -> (estimator_fn q, actual ds q)) queries)

let xseed_estimator ?budget ds =
  let kernel = Lazy.force ds.kernel in
  match budget with
  | None -> Core.Estimator.create ~card_threshold:ds.card_threshold kernel
  | Some bytes ->
    let het, _, _ = het_1bp ds in
    Core.Het.set_budget het
      ~bytes:(max 0 (bytes - Core.Kernel.size_in_bytes kernel));
    Core.Estimator.create ~card_threshold:ds.card_threshold ~het kernel

(* ------------------------------------------------------------------ *)
(* Table 2: data characteristics, kernel size, construction times. *)

let table2 () =
  header "Table 2: data sets, XSEED kernel size, construction times";
  pf "(paper rows are quoted per dataset for shape comparison)\n\n";
  pf "%-12s %10s %9s %11s %9s | %9s %9s %12s | %14s\n" "dataset" "bytes"
    "nodes" "avg/max rl" "paths" "kernel B" "kern (s)" "1BP HET (s)"
    "TreeSketch (s)";
  List.iter
    (fun ds ->
      let doc = Lazy.force ds.doc in
      let stats = Xml.Doc_stats.of_string doc in
      let kernel, kernel_seconds =
        time (fun () -> Core.Builder.of_string (Lazy.force ds.doc))
      in
      ignore (Lazy.force ds.kernel);
      let _, _, het_seconds = het_1bp ds in
      let ts_cell =
        (* TreeSketch at the 50KB budget; the work cutoff reproduces DNF. *)
        let max_work = scale 20_000_000 200_000_000 in
        let (sketch, ts_stats), seconds =
          time (fun () ->
              Treesketch.Sketch.build ~budget_bytes:51_200 ~max_work
                (Lazy.force ds.storage))
        in
        ignore (sketch : Treesketch.Sketch.t);
        if ts_stats.completed then Printf.sprintf "%14.2f" seconds
        else Printf.sprintf "%11.0f DNF" seconds
      in
      pf "%-12s %10d %9d %6.2f/%-4d %9d | %9d %9.3f %12.2f | %s\n" ds.name
        stats.total_bytes stats.node_count stats.avg_recursion_level
        stats.max_recursion_level
        (Pathtree.Path_tree.size (Lazy.force ds.path_tree))
        (Core.Kernel.size_in_bytes kernel)
        kernel_seconds het_seconds ts_cell;
      pf "%-12s   paper: %s\n" "" ds.paper_row)
    all_datasets;
  pf "\nShape under test: kernel construction is a single parse (negligible);\n";
  pf "HET construction is the slower precomputation; TreeSketch construction\n";
  pf "is orders of magnitude slower still (our bounded greedy finishes at\n";
  pf "these corpus sizes; the paper's exhaustive greedy DNFs on Treebank,\n";
  pf "and the work cutoff reproduces that at larger scales).\n"

(* ------------------------------------------------------------------ *)
(* Table 3: accuracy under 25KB / 50KB budgets vs TreeSketch. *)

let paper_table3 =
  [ ("DBLP",
     "kernel 1960.5/15.4% | 25K: xs 103/0.81% ts 221.5/1.67% | 50K: xs 103/0.81% ts 203.1/1.59%");
    ("XMark10",
     "kernel 39.6/15.1% | 25K: xs 3.7/1.43% ts 62.7/23.7% | 50K: xs 3.7/1.43% ts 58.4/22.1%");
    ("XMark100",
     "kernel 276.2/5.06% | 25K: xs 256.3/4.71% ts 638.2/11.7% | 50K: xs 256.3/4.71% ts 635.5/11.65%");
    ("Treebank.05",
     "kernel 22.7/169% | 25K: xs 22.7/169% ts 229.6/877% | 50K: xs 12.8/95.6% ts 227.1/867%") ]

let table3 () =
  header "Table 3: RMSE / NRMSE under memory budgets (XSEED vs TreeSketch)";
  pf "workload per dataset: all SP + %d BP + %d CP\n\n" workload_count
    workload_count;
  pf "%-12s %-24s %10s %10s\n" "dataset" "program" "RMSE" "NRMSE";
  List.iter
    (fun ds ->
      let queries = combined ds in
      let report label fn =
        let s = summarize_pairs ds fn queries in
        pf "%-12s %-24s %10.2f %9.2f%%\n" ds.name label s.rmse (100.0 *. s.nrmse)
      in
      let kernel_only = xseed_estimator ds in
      report "XSEED kernel" (fun q -> Core.Estimator.estimate kernel_only q);
      List.iter
        (fun budget ->
          let est = xseed_estimator ~budget ds in
          report
            (Printf.sprintf "XSEED %dKB" (budget / 1024))
            (fun q -> Core.Estimator.estimate est q);
          let sketch, ts_stats =
            Treesketch.Sketch.build ~budget_bytes:budget
              ~max_work:(scale 20_000_000 200_000_000)
              (Lazy.force ds.storage)
          in
          let suffix = if ts_stats.completed then "" else " (cutoff)" in
          report
            (Printf.sprintf "TreeSketch %dKB%s" (budget / 1024) suffix)
            (fun q ->
              Treesketch.Sketch.estimate ~card_threshold:ds.card_threshold
                ~max_depth:(if ds.card_threshold > 1.0 then 24 else 40)
                sketch q))
        [ 25 * 1024; 50 * 1024 ];
      (match List.assoc_opt ds.name paper_table3 with
       | Some row -> pf "%-12s   paper: %s\n" "" row
       | None -> ());
      pf "\n")
    table3_datasets;
  pf "Shapes under test: (1) on recursive data XSEED beats TreeSketch by a\n";
  pf "large factor even kernel-only; (2) on non-recursive data the bare\n";
  pf "kernel loses to TreeSketch but kernel+HET wins; (3) a bigger budget\n";
  pf "never hurts XSEED.\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: estimation errors per query type on DBLP. *)

let fig5 () =
  header "Figure 5: estimation errors by query type on DBLP";
  let ds = dblp in
  let kernel_only = xseed_estimator ds in
  let with_het = xseed_estimator ~budget:(25 * 1024) ds in
  let sketch, _ =
    Treesketch.Sketch.build ~budget_bytes:(25 * 1024)
      ~max_work:(scale 20_000_000 200_000_000)
      (Lazy.force ds.storage)
  in
  pf "%-6s %-14s %10s %10s\n" "type" "program" "RMSE" "NRMSE";
  List.iter
    (fun (kind, queries) ->
      let report label fn =
        let s = summarize_pairs ds fn queries in
        pf "%-6s %-14s %10.2f %9.2f%%\n" kind label s.rmse (100.0 *. s.nrmse)
      in
      report "kernel" (fun q -> Core.Estimator.estimate kernel_only q);
      report "XSEED" (fun q -> Core.Estimator.estimate with_het q);
      report "TreeSketch" (fun q -> Treesketch.Sketch.estimate sketch q);
      pf "\n")
    [ ("SP", sp_queries ds); ("BP", bp_queries ds); ("CP", cp_queries ds) ];
  (* The specific anomaly the paper calls out. *)
  let anomaly = Xpath.Parser.parse "/dblp/article[pages]/publisher" in
  pf "the paper's anomaly query /dblp/article[pages]/publisher:\n";
  pf "  actual %.0f | kernel %.1f | XSEED+HET %.1f\n" (actual ds anomaly)
    (Core.Estimator.estimate kernel_only anomaly)
    (Core.Estimator.estimate with_het anomaly);
  pf "  (bsel(pages)=0.8 > BSEL_THRESHOLD=0.1 so the correlated hyper-edge\n";
  pf "   is omitted - the one case where TreeSketch wins in the paper)\n";
  pf "\nShape under test: BP on DBLP is XSEED's weak spot (sibling\n";
  pf "correlations above BSEL_THRESHOLD); SP and CP favour XSEED.\n"

(* ------------------------------------------------------------------ *)
(* Figure 6: MBP settings on DBLP - HET construction time vs error. *)

let fig6 () =
  header "Figure 6: max-branching-predicate settings on DBLP (2BP workload)";
  let ds = dblp in
  let queries = bp_queries ~mbp:2 ~count:workload_count ds in
  let kernel = Lazy.force ds.kernel in
  pf "%-14s %12s %10s %10s %14s\n" "HET setting" "build (s)" "RMSE" "NRMSE"
    "HET entries";
  let report label het seconds =
    let est =
      Core.Estimator.create ~card_threshold:ds.card_threshold ?het kernel
    in
    let s = summarize_pairs ds (fun q -> Core.Estimator.estimate est q) queries in
    pf "%-14s %12.2f %10.2f %9.2f%% %14s\n" label seconds s.rmse
      (100.0 *. s.nrmse)
      (match het with
       | None -> "-"
       | Some h -> string_of_int (Core.Het.total_count h))
  in
  report "0BP (kernel)" None 0.0;
  List.iter
    (fun mbp ->
      let (het, _stats), seconds =
        time (fun () ->
            Core.Het_builder.build ~mbp ~bsel_threshold:ds.bsel_threshold
              ~card_threshold:ds.card_threshold ~kernel
              ~path_tree:(Lazy.force ds.path_tree)
              ~storage:(Lazy.force ds.storage) ())
      in
      report (Printf.sprintf "%dBP" mbp) (Some het) seconds)
    [ 1; 2 ];
  pf "\npaper: error falls 66%% from 0BP to 1BP but only 8%% more from 1BP to\n";
  pf "2BP, while 2BP construction costs ~10x 1BP.\n"

(* ------------------------------------------------------------------ *)
(* Section 6.4: estimation time vs actual query time; EPT size. *)

let sec64 () =
  header "Section 6.4: estimation efficiency";
  let sample_size = scale 20 40 in
  pf "%-12s %12s %12s %9s | %10s %10s %9s\n" "dataset" "est (ms)" "query (ms)"
    "ratio" "EPT nodes" "doc nodes" "EPT/doc";
  List.iter
    (fun ds ->
      let kernel = Lazy.force ds.kernel in
      let storage = Lazy.force ds.storage in
      let queries =
        let all = Array.of_list (combined ds) in
        let rng = Datagen.Rng.create ~seed:9009 in
        Datagen.Rng.shuffle rng all;
        Array.to_list (Array.sub all 0 (min sample_size (Array.length all)))
      in
      let estimator =
        Core.Estimator.create ~card_threshold:ds.card_threshold kernel
      in
      let (), est_seconds =
        time (fun () ->
            List.iter
              (fun q -> ignore (Core.Estimator.estimate estimator q : float))
              queries)
      in
      let (), query_seconds =
        time (fun () ->
            List.iter (fun q -> ignore (Nok.Eval.cardinality storage q : int)) queries)
      in
      let n = float_of_int (List.length queries) in
      let ept =
        Core.Matcher.materialize
          (Core.Traveler.create ~card_threshold:ds.card_threshold kernel)
      in
      let doc_nodes = Nok.Storage.node_count storage in
      pf "%-12s %12.3f %12.3f %8.2f%% | %10d %10d %8.3f%%\n" ds.name
        (1000.0 *. est_seconds /. n)
        (1000.0 *. query_seconds /. n)
        (100.0 *. est_seconds /. query_seconds)
        (Core.Matcher.node_count ept)
        doc_nodes
        (100.0
        *. float_of_int (Core.Matcher.node_count ept)
        /. float_of_int doc_nodes);
      pf "%-12s   (CARD_THRESHOLD = %g)\n" "" ds.card_threshold)
    all_datasets;
  pf "\npaper ratios: DBLP 0.018%%, XMark10 0.57%%, XMark100 0.0916%%,\n";
  pf "Treebank.05 2%%, Treebank 1.5%%; EPT/doc: 0.0035%% / 0.036%% / 0.05%% /\n";
  pf "6.9%% / 5.5%%. Shape under test: estimation is a small fraction of\n";
  pf "actual querying; the threshold keeps the EPT small on recursive data.\n"

(* ------------------------------------------------------------------ *)
(* Ablations: what each design choice called out in DESIGN.md buys. *)

let ablation () =
  header "Ablations (design choices from DESIGN.md)";

  (* A. Recursion-level vectors (the paper's key novelty): XSEED vs a
     recursion-blind variant (collapsed kernel + level-0 traveler). *)
  pf "A. recursion-aware kernel vs collapsed (Treebank.05, recursive queries)\n";
  let ds = treebank05 in
  let kernel = Lazy.force ds.kernel in
  let flat = Core.Kernel.collapse_levels kernel in
  let aware = Core.Estimator.create ~card_threshold:2.0 kernel in
  let blind =
    Core.Estimator.create ~card_threshold:2.0 ~recursion_aware:false flat
  in
  let recursive_queries =
    List.filter_map
      (fun q -> match Xpath.Parser.parse q with p -> Some p | exception _ -> None)
      [ "//S//S"; "//NP//NP"; "//VP//VP"; "//S//S//S"; "//NP//NP//NP";
        "//SBAR//S"; "//S//VP"; "//NP//PP//NP" ]
  in
  pf "%-16s %10s %12s %14s\n" "query" "actual" "recursion-on" "recursion-off";
  List.iter
    (fun q ->
      pf "%-16s %10.0f %12.1f %14.1f\n"
        (Xpath.Ast.to_string q)
        (actual ds q)
        (Core.Estimator.estimate aware q)
        (Core.Estimator.estimate blind q))
    recursive_queries;
  let rec_s =
    Stats.Metrics.summarize
      (List.map (fun q -> (Core.Estimator.estimate aware q, actual ds q)) recursive_queries)
  in
  let blind_s =
    Stats.Metrics.summarize
      (List.map (fun q -> (Core.Estimator.estimate blind q, actual ds q)) recursive_queries)
  in
  pf "RMSE: recursion-aware %.1f vs blind %.1f (%.1fx)\n" rec_s.rmse blind_s.rmse
    (blind_s.rmse /. Float.max 1e-9 rec_s.rmse);
  pf "kernel bytes: with levels %d, collapsed %d\n\n"
    (Core.Kernel.size_in_bytes kernel)
    (Core.Kernel.size_in_bytes flat);

  (* B. Zero-cardinality HET entries for kernel false positives. *)
  pf "B. HET zero-entries for kernel false-positive paths (Treebank.05, SP)\n";
  let fp_threshold = 2.0 in
  let het_with, _ =
    Core.Het_builder.build ~bsel_threshold:ds.bsel_threshold
      ~card_threshold:fp_threshold ~kernel ~path_tree:(Lazy.force ds.path_tree) ()
  in
  let het_without, _ =
    Core.Het_builder.build ~zero_entries:false ~bsel_threshold:ds.bsel_threshold
      ~card_threshold:fp_threshold ~kernel ~path_tree:(Lazy.force ds.path_tree) ()
  in
  (* Zero entries matter for paths derivable from the kernel but absent from
     the data (Observation 1's false positives): walk the EPT and keep the
     label paths the path tree does not contain. *)
  let fp_queries =
    let pt = Lazy.force ds.path_tree in
    let traveler = Core.Traveler.create ~card_threshold:fp_threshold kernel in
    let acc = ref [] in
    let path = ref [] in
    Core.Traveler.iter traveler ~f:(fun event ->
        match event with
        | Core.Traveler.Open { label; _ } ->
          path := label :: !path;
          let labels = List.rev !path in
          if Pathtree.Path_tree.find_path pt labels = None then
            acc :=
              List.map
                (fun l ->
                  { Xpath.Ast.axis = Xpath.Ast.Child;
                    test = Xpath.Ast.Name (Xml.Label.name ds.table l);
                    predicates = []; value_predicates = [] })
                labels
              :: !acc
        | Core.Traveler.Close _ ->
          (match !path with [] -> () | _ :: rest -> path := rest)
        | Core.Traveler.Eos -> ());
    List.filteri (fun i _ -> i mod 3 = 0) (List.rev !acc)
  in
  let err het =
    let est = Core.Estimator.create ~card_threshold:fp_threshold ~het kernel in
    let ept = Core.Estimator.ept est in
    Stats.Metrics.summarize
      (List.map (fun q -> (Core.Estimator.estimate_on est ept q, 0.0)) fp_queries)
  in
  if fp_queries = [] then pf "no false-positive paths at this scale\n\n"
  else
    pf "%d false-positive (empty-result) paths: RMSE with zero-entries %.2f, without %.2f\n\n"
      (List.length fp_queries) (err het_with).rmse (err het_without).rmse;

  (* C. The Markov-table related-work baseline: accuracy where it applies,
     and how much of the workload it cannot answer at all. *)
  pf "C. Markov-table baseline (related work [1]) on DBLP\n";
  let ds = dblp in
  let storage = Lazy.force ds.storage in
  let queries = combined ds in
  let mt2 = Markov.Markov_table.build ~order:2 storage in
  let mt3 = Markov.Markov_table.build ~order:3 storage in
  let xseed = xseed_estimator ~budget:(25 * 1024) ds in
  let xseed_ept = Core.Estimator.ept xseed in
  let report label estimate size =
    let supported = ref 0 in
    let pairs =
      List.filter_map
        (fun q ->
          match estimate q with
          | Some e ->
            incr supported;
            Some (e, actual ds q)
          | None -> None)
        queries
    in
    let s = Stats.Metrics.summarize pairs in
    pf "%-14s %10.2f %9.2f%% %10d B %9d/%d queries answered\n" label s.rmse
      (100.0 *. s.nrmse) size !supported (List.length queries)
  in
  pf "%-14s %10s %10s %12s %s\n" "program" "RMSE" "NRMSE" "size" "coverage";
  report "Markov k=2" (fun q -> Markov.Markov_table.estimate mt2 q)
    (Markov.Markov_table.size_in_bytes mt2);
  report "Markov k=3" (fun q -> Markov.Markov_table.estimate mt3 q)
    (Markov.Markov_table.size_in_bytes mt3);
  report "XSEED 25KB"
    (fun q -> Some (Core.Estimator.estimate_on xseed xseed_ept q))
    (Core.Estimator.size_in_bytes xseed);
  pf "\n(RMSE compared only over each program's supported queries; the\n";
  pf "Markov baseline cannot answer branching or wildcard queries at all -\n";
  pf "the coverage gap the paper's related-work section points out.)\n"

(* ------------------------------------------------------------------ *)
(* Value predicates (the paper's future-work layer): histogram-based
   selectivities vs ignoring the predicates. *)

let values () =
  header "Value predicates (future-work extension, Section 1)";
  List.iter
    (fun (name, doc) ->
      let st = Nok.Storage.of_string ~with_values:true doc in
      let pt = Pathtree.Path_tree.of_string ~table:st.Nok.Storage.table doc in
      let kernel = Core.Builder.of_string ~table:st.Nok.Storage.table doc in
      let vs = Core.Value_synopsis.build st in
      let rng = Datagen.Rng.create ~seed:4242 in
      let queries =
        Datagen.Workload.valued pt ~storage:st ~rng ~count:workload_count ()
      in
      let run estimator =
        Stats.Metrics.summarize
          (List.map
             (fun q ->
               ( Core.Estimator.estimate estimator q,
                 float_of_int (Nok.Eval.cardinality st q) ))
             queries)
      in
      let with_vs = run (Core.Estimator.create ~values:vs kernel) in
      let without = run (Core.Estimator.create kernel) in
      pf "%-10s %4d valued queries | with synopsis RMSE %8.2f NRMSE %7.2f%% | ignored RMSE %8.2f NRMSE %7.2f%% | synopsis %d B\n"
        name (List.length queries) with_vs.rmse (100.0 *. with_vs.nrmse)
        without.rmse (100.0 *. without.nrmse)
        (Core.Value_synopsis.size_in_bytes vs))
    [ ("DBLP", Datagen.Dblp.generate ~seed:501 ~records:(scale 500 3000) ());
      ("XMark", Datagen.Xmark.generate ~seed:502 ~items:(scale 50 400) ()) ];
  pf "\nShape under test: per-path equi-depth histograms and end-biased\n";
  pf "frequent-value tables turn value predicates from ignored (factor 1)\n";
  pf "into calibrated selectivities, as the value-synopsis line of work the\n";
  pf "paper cites anticipates.\n"

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)
(* Parallel serving: pool batch throughput vs worker-domain count. Each
   measured pass invalidates the shard caches first, so every query
   exercises the matcher — the parallelizable work — rather than its
   shard's LRU. *)

let pool_worker_counts = [ 1; 2; 4 ]

(* Detected once; both the interactive gate and the JSON dumps key their
   ≥ 2.5x@4 enforcement off this single reading. *)
let host_cores = Domain.recommended_domain_count ()

(* Returns (queries/s, steals, affinity_hits) so dispatch-shape sweeps can
   attribute a regression to scheduling, not just observe throughput. *)
let pool_throughput ?(passes = 3) ?chunk_target ?steal ?affinity estimator
    queries ~workers =
  let pool =
    Engine.Pool.create ~workers ?chunk_target ?steal ~telemetry:false estimator
  in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* Warm-up pass: materializes the shared EPT outside the timed region. *)
  ignore
    (Engine.Pool.estimate_batch ?affinity pool queries
      : (Engine.Serve.estimate_reply, Core.Error.t) result list);
  let served = ref 0 in
  let (), seconds =
    time (fun () ->
        for _ = 1 to passes do
          Engine.Pool.invalidate pool;
          let rs = Engine.Pool.estimate_batch ?affinity pool queries in
          served := !served + List.length rs
        done)
  in
  ( float_of_int !served /. seconds,
    Engine.Pool.steals_total pool,
    Engine.Pool.affinity_hits pool )

(* The dispatch shapes the sweep compares at 4 domains: one queue op per
   query, chunked without rebalancing, and the default chunked + steal. *)
let chunk_sweep_legs =
  [ ("per_item", Some 1, Some true);
    ("chunked", None, Some false);
    ("chunked_steal", None, None) ]

let pool_mismatches estimator queries =
  let engine = Engine.create ~telemetry:false estimator in
  let pool = Engine.Pool.create ~workers:4 ~telemetry:false estimator in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  List.fold_left
    (fun acc q ->
      let ev =
        match Engine.estimate engine q with
        | Ok s -> s.Engine.outcome.Core.Estimator.value
        | Error _ -> nan
      and pv =
        match Engine.Pool.estimate pool q with
        | Ok r -> r.Engine.Serve.value
        | Error _ -> neg_infinity
      in
      if Int64.bits_of_float ev = Int64.bits_of_float pv then acc else acc + 1)
    0 queries

let parallel () =
  header "Parallel serving: pool batch throughput at 1/2/4 domains (XMark)";
  let ds = xmark10 in
  let estimator = xseed_estimator ~budget:(25 * 1024) ds in
  let queries = List.map Xpath.Ast.to_string (combined ds) in
  pf "workload: %d queries/pass, cold shard caches each timed pass\n"
    (List.length queries);
  pf "host: %d recommended domain(s)\n\n" host_cores;
  let mismatches = pool_mismatches estimator queries in
  pf "pool vs single engine: %d/%d mismatched estimates%s\n" mismatches
    (List.length queries)
    (if mismatches = 0 then " (bit-identical)" else "  <- BUG");
  assert (mismatches = 0);
  let passes = scale 2 4 in
  let results =
    List.map
      (fun w ->
        let qps, _, _ = pool_throughput ~passes estimator queries ~workers:w in
        (w, qps))
      pool_worker_counts
  in
  let qps1 = List.assoc 1 results in
  pf "\n%8s %12s %9s\n" "workers" "queries/s" "speedup";
  List.iter
    (fun (w, qps) -> pf "%8d %12.0f %8.2fx\n" w qps (qps /. qps1))
    results;
  (* Dispatch-shape sweep at 4 domains: how much of the scaling comes from
     chunking, and how much stealing claws back on skewed deques. *)
  pf "\n%-16s %12s %8s %14s\n" "dispatch @4" "queries/s" "steals"
    "affinity_hits";
  List.iter
    (fun (leg, chunk_target, steal) ->
      let qps, steals, hits =
        pool_throughput ~passes ?chunk_target ?steal estimator queries
          ~workers:4
      in
      pf "%-16s %12.0f %8d %14d\n" leg qps steals hits)
    chunk_sweep_legs;
  let speedup4 = List.assoc 4 results /. qps1 in
  if host_cores >= 4 then begin
    pf "\n4-domain speedup %.2fx (gate: >= 2.5x on this %d-core host)\n"
      speedup4 host_cores;
    if speedup4 < 2.5 then begin
      Printf.eprintf
        "parallel: 4-domain speedup %.2fx < 2.5x gate on a %d-core host\n"
        speedup4 host_cores;
      exit 1
    end
  end
  else
    pf
      "\n4-domain speedup %.2fx; host has only %d recommended domain(s), \
       >= 2.5x gate skipped\n"
      speedup4 host_cores

(* ------------------------------------------------------------------ *)
(* Causal profile: the serving path's per-stage breakdown (queue-wait /
   execute / reassemble percentiles from Pool.profile's per-job monotonic
   stamps) at 1 and 4 domains, and the tracing-overhead gate — recording
   trace events on the estimate path must cost < 5% median latency vs. an
   untraced engine, measured the same alternating-pass way as the
   telemetry guard. *)

let profile_worker_counts = [ 1; 4 ]

let pool_profile estimator queries ~workers =
  let pool = Engine.Pool.create ~workers ~telemetry:false estimator in
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) @@ fun () ->
  (* Warm-up pass materializes the shared EPT; the profiled pass then runs
     cold-cache so execute times are real pipeline runs. *)
  ignore
    (Engine.Pool.estimate_batch pool queries
      : (Engine.Serve.estimate_reply, Core.Error.t) result list);
  Engine.Pool.invalidate pool;
  match Engine.Pool.profile pool queries with
  | Ok p -> p
  | Error e -> raise (Core.Error.Xseed e)

let stage_json (s : Engine.Serve.stage_percentiles) =
  Obs.Json.Obj
    [ ("p50", Obs.Json.Float s.p50);
      ("p90", Obs.Json.Float s.p90);
      ("p99", Obs.Json.Float s.p99) ]

let profile_reply_json (p : Engine.Serve.profile_reply) =
  Obs.Json.Obj
    [ ("profiled", Obs.Json.Int p.profiled);
      ("queue_wait_us", stage_json p.queue_wait_us);
      ("execute_us", stage_json p.execute_us);
      ("reassemble_us", stage_json p.reassemble_us);
      ("steals", Obs.Json.Int p.steals) ]

let profile_section () =
  header "Causal profile: stage breakdown + tracing overhead (XMark)";
  let ds = xmark10 in
  let estimator = xseed_estimator ~budget:(25 * 1024) ds in
  let queries = List.map Xpath.Ast.to_string (combined ds) in
  pf "workload: %d queries, cold shard caches, per-stage percentiles in us\n\n"
    (List.length queries);
  pf "%8s %9s %29s %29s %29s\n" "workers" "profiled" "queue-wait (us)"
    "execute (us)" "reassemble (us)";
  let stage_cells (s : Engine.Serve.stage_percentiles) =
    Printf.sprintf "p50 %7.1f p90 %7.1f p99 %7.1f" s.p50 s.p90 s.p99
  in
  List.iter
    (fun w ->
      let p = pool_profile estimator queries ~workers:w in
      assert (p.Engine.Serve.profiled = List.length queries);
      pf "%8d %9d %29s %29s %29s\n" w p.Engine.Serve.profiled
        (stage_cells p.Engine.Serve.queue_wait_us)
        (stage_cells p.Engine.Serve.execute_us)
        (stage_cells p.Engine.Serve.reassemble_us))
    profile_worker_counts;
  (* Tracing-overhead gate, alternating passes as in [telemetry ()]. *)
  let passes = scale 10 16 in
  let engine_with ~trace =
    Engine.create ~telemetry:false ~cache_capacity:4096 ?trace
      (Core.Estimator.create ~card_threshold:ds.card_threshold
         (Lazy.force ds.kernel))
  in
  let asts = bp_queries ds @ cp_queries ds in
  let traced = engine_with ~trace:(Some (Obs.Trace.create ())) in
  let plain = engine_with ~trace:None in
  let lat_traced = ref [] and lat_plain = ref [] in
  let run_pass engine sink =
    Engine.invalidate engine;
    List.iter
      (fun q ->
        let t0 = Unix.gettimeofday () in
        (match Engine.estimate_ast engine q with
         | Ok _ -> ()
         | Error e -> raise (Core.Error.Xseed e));
        sink := (Unix.gettimeofday () -. t0) :: !sink)
      asts
  in
  run_pass traced (ref []);
  run_pass plain (ref []);
  for _ = 1 to passes do
    run_pass plain lat_plain;
    run_pass traced lat_traced
  done;
  let median samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let m_traced = median !lat_traced and m_plain = median !lat_plain in
  let overhead = (m_traced -. m_plain) /. m_plain in
  pf "\ntracing overhead: %d queries x %d passes (cache invalidated per pass)\n"
    (List.length asts) passes;
  pf "%-24s %11.1f us\n" "tracing off" (1e6 *. m_plain);
  pf "%-24s %11.1f us\n" "tracing on" (1e6 *. m_traced);
  pf "%-24s %+12.2f%%\n" "overhead" (100.0 *. overhead);
  if overhead >= 0.05 then begin
    Printf.eprintf
      "profile: tracing median overhead %.2f%% >= 5%% budget (on %.1f us, \
       off %.1f us)\n"
      (100.0 *. overhead) (1e6 *. m_traced) (1e6 *. m_plain);
    exit 1
  end;
  pf "within the 5%% budget\n"

(* Machine-readable dumps: per-dataset BENCH_<name>.json with exact
   per-query estimation-latency percentiles and the accuracy summary.
   These are the files CI or a tracking dashboard would diff across
   commits; the schema is documented in README "Observability". *)

let exact_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let bench_json () =
  header "JSON dumps: latency percentiles + accuracy (BENCH_*.json)";
  let gate_failures = ref [] in
  List.iter
    (fun (file_key, ds) ->
      let estimator = xseed_estimator ~budget:(25 * 1024) ds in
      let queries = combined ds in
      let latencies = ref [] in
      let pairs =
        List.map
          (fun q ->
            let t0 = Unix.gettimeofday () in
            let est = Core.Estimator.estimate estimator q in
            latencies := (Unix.gettimeofday () -. t0) :: !latencies;
            (est, actual ds q))
          queries
      in
      let s = Stats.Metrics.summarize pairs in
      let sorted = Array.of_list !latencies in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let us x = 1e6 *. x in
      let mean_us = us (Array.fold_left ( +. ) 0.0 sorted /. float_of_int n) in
      let json =
        Obs.Json.Obj
          [ ("dataset", Obs.Json.String ds.name);
            ( "host",
              Obs.Json.Obj
                [ ("cores", Obs.Json.Int host_cores);
                  ( "hostname_hash",
                    Obs.Json.String
                      (Printf.sprintf "%08x"
                         (Hashtbl.hash (Unix.gethostname ()) land 0xffffffff))
                  ) ] );
            ("queries", Obs.Json.Int n);
            ("card_threshold", Obs.Json.Float ds.card_threshold);
            ("synopsis_bytes", Obs.Json.Int (Core.Estimator.size_in_bytes estimator));
            ( "latency_us",
              Obs.Json.Obj
                [ ("mean", Obs.Json.Float mean_us);
                  ("p50", Obs.Json.Float (us (exact_percentile sorted 0.50)));
                  ("p90", Obs.Json.Float (us (exact_percentile sorted 0.90)));
                  ("p99", Obs.Json.Float (us (exact_percentile sorted 0.99)));
                  ("max", Obs.Json.Float (us sorted.(n - 1))) ] );
            ( "accuracy",
              Obs.Json.Obj
                [ ("rmse", Obs.Json.Float s.rmse);
                  ("nrmse", Obs.Json.Float s.nrmse);
                  ("r_squared", Obs.Json.Float s.r_squared);
                  ("opd", Obs.Json.Float s.opd);
                  ("q_error_median", Obs.Json.Float s.q_error_median);
                  ("q_error_p90", Obs.Json.Float s.q_error_p90);
                  ("q_error_max", Obs.Json.Float s.q_error_max) ] );
            ( "parallel",
              let qstrings = List.map Xpath.Ast.to_string queries in
              let pqps =
                List.map
                  (fun w ->
                    let qps, _, _ =
                      pool_throughput ~passes:(scale 1 2) estimator qstrings
                        ~workers:w
                    in
                    (w, qps))
                  pool_worker_counts
              in
              let speedup = List.assoc 4 pqps /. List.assoc 1 pqps in
              (* The ≥ 2.5x@4 gate is host-count-conditional: enforced (and
                 recorded as passed/failed) wherever 4 domains fit real
                 cores, recorded as skipped everywhere else so CI can
                 assert the gate actually ran on its 4-core runners. *)
              let gate =
                if host_cores < 4 then "skipped"
                else if speedup >= 2.5 then "passed"
                else begin
                  gate_failures :=
                    Printf.sprintf "%s (%.2fx)" ds.name speedup
                    :: !gate_failures;
                  "failed"
                end
              in
              (* Dispatch-shape sweep at 4 domains, with scheduling
                 counters: affinity routes every chunk to one shard, so
                 the steal path does the balancing and its counters are
                 the attribution trail. *)
              let sweep =
                List.map
                  (fun (leg, chunk_target, steal) ->
                    let affinity =
                      if leg = "chunked_steal" then Some 0 else None
                    in
                    ( leg,
                      pool_throughput ~passes:(scale 1 2) ?chunk_target ?steal
                        ?affinity estimator qstrings ~workers:4 ))
                  chunk_sweep_legs
              in
              let _, steals, affinity_hits = List.assoc "chunked_steal" sweep in
              Obs.Json.Obj
                (List.map
                   (fun (w, qps) ->
                     (Printf.sprintf "workers_%d" w, Obs.Json.Float qps))
                   pqps
                @ [ ("speedup_4v1", Obs.Json.Float speedup);
                    ("gate", Obs.Json.String gate);
                    ( "chunk_sweep",
                      Obs.Json.Obj
                        (List.map
                           (fun (leg, (qps, _, _)) ->
                             (leg, Obs.Json.Float qps))
                           sweep) );
                    ("steals", Obs.Json.Int steals);
                    ("affinity_hits", Obs.Json.Int affinity_hits) ]) );
            ( "profile",
              let qstrings = List.map Xpath.Ast.to_string queries in
              Obs.Json.Obj
                (List.map
                   (fun w ->
                     ( Printf.sprintf "workers_%d" w,
                       profile_reply_json
                         (pool_profile estimator qstrings ~workers:w) ))
                   profile_worker_counts) ) ]
      in
      let path = Printf.sprintf "BENCH_%s.json" file_key in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n';
      close_out oc;
      pf "wrote %s: %d queries, mean %.1f us, q50 %.2f q90 %.2f qmax %.3g\n" path
        n mean_us s.q_error_median s.q_error_p90 s.q_error_max)
    [ ("dblp", dblp); ("xmark", xmark10); ("treebank", treebank05) ];
  (* Every dump is written first — a failing dataset still leaves its
     artifact (with "gate":"failed") on disk for attribution — then the
     hard gate fires once for all of them. *)
  if !gate_failures <> [] then begin
    Printf.eprintf
      "bench json: speedup_4v1 < 2.5x on a %d-core host for %s\n" host_cores
      (String.concat ", " (List.rev !gate_failures));
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The serving engine's query-feedback loop (paper Figure 1) end to end:
   the HET starts empty under a fixed budget and is populated purely from
   execution feedback; per-round q-error over the same workload must
   ratchet down as the table fills. *)

let feedback () =
  header "Feedback refinement: q-error per round (empty HET, fixed budget)";
  let rounds = 3 and budget = 4 * 1024 in
  pf "engine: qerror_threshold 2.0, HET budget %d B, BP+CP workload\n\n" budget;
  pf "%-12s %5s %10s %10s %12s %6s %6s %9s\n" "dataset" "round" "q-median"
    "q-p90" "q-max" "HET" "refine" "cache-hit";
  List.iter
    (fun ds ->
      let het = Core.Het.create () in
      Core.Het.set_budget het ~bytes:budget;
      let estimator =
        Core.Estimator.create ~card_threshold:ds.card_threshold ~het
          (Lazy.force ds.kernel)
      in
      let engine = Engine.create ~cache_capacity:4096 estimator in
      let queries = bp_queries ds @ cp_queries ds in
      for round = 1 to rounds do
        let pairs =
          List.map
            (fun q ->
              match Engine.estimate_ast engine q with
              | Ok s -> (s.Engine.outcome.Core.Estimator.value, actual ds q)
              | Error e -> raise (Core.Error.Xseed e))
            queries
        in
        let s = Stats.Metrics.summarize pairs in
        List.iter
          (fun q ->
            match
              Engine.feedback_ast engine q
                ~actual:(int_of_float (actual ds q))
            with
            | Ok _ -> ()
            | Error e -> raise (Core.Error.Xseed e))
          queries;
        let c = Engine.cache_counters engine in
        let lookups = c.Engine.Lru_cache.hits + c.Engine.Lru_cache.misses in
        pf "%-12s %5d %10.3f %10.3f %12.4g %6d %6d %8.1f%%\n" ds.name round
          s.q_error_median s.q_error_p90 s.q_error_max
          (Core.Het.active_count het)
          (Engine.feedback_rounds engine)
          (100.0 *. float_of_int c.Engine.Lru_cache.hits
          /. float_of_int (max 1 lookups))
      done;
      pf "\n")
    [ dblp; xmark10; treebank05 ];
  pf "q-error is measured before each round's feedback, so round 1 is the\n";
  pf "kernel-only baseline and later rounds show what feedback bought.\n"

(* ------------------------------------------------------------------ *)
(* Telemetry-overhead guard: serving with the flight recorder + drift
   monitor on must not cost more than 5% median estimate latency over
   cache misses vs. a telemetry-free engine. Passes alternate between the
   two engines so clock drift and GC pressure hit both sides equally, and
   the cache is invalidated between passes so every timed estimate is a
   real pipeline run (the shared EPT is rebuilt by the first query of a
   pass, which the median ignores). *)

let telemetry () =
  header "Telemetry overhead: estimate latency, recorder+drift vs. off";
  let ds = xmark10 in
  let passes = scale 10 16 in
  let queries = bp_queries ds @ cp_queries ds in
  let engine_with ~telemetry =
    Engine.create ~telemetry ~cache_capacity:4096
      (Core.Estimator.create ~card_threshold:ds.card_threshold
         (Lazy.force ds.kernel))
  in
  let on = engine_with ~telemetry:true in
  let off = engine_with ~telemetry:false in
  let lat_on = ref [] and lat_off = ref [] in
  let run_pass engine sink =
    Engine.invalidate engine;
    List.iter
      (fun q ->
        let t0 = Unix.gettimeofday () in
        (match Engine.estimate_ast engine q with
         | Ok _ -> ()
         | Error e -> raise (Core.Error.Xseed e));
        sink := (Unix.gettimeofday () -. t0) :: !sink)
      queries
  in
  (* Warm both (first EPT build, allocator) outside the measurement. *)
  run_pass on (ref []);
  run_pass off (ref []);
  for _ = 1 to passes do
    run_pass off lat_off;
    run_pass on lat_on
  done;
  let median samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let m_on = median !lat_on and m_off = median !lat_off in
  let overhead = (m_on -. m_off) /. m_off in
  pf "%d queries x %d passes (cache invalidated per pass; XMark)\n\n"
    (List.length queries) passes;
  pf "%-24s %14s\n" "mode" "median/query";
  pf "%-24s %11.1f us\n" "telemetry off (Noop)" (1e6 *. m_off);
  pf "%-24s %11.1f us\n" "recorder + drift" (1e6 *. m_on);
  pf "%-24s %+13.2f%%\n" "overhead" (100.0 *. overhead);
  (match Engine.recorder on with
   | Some fr ->
     pf "\nflight records written: %d (ring %d)\n"
       (Engine.Flight_recorder.total fr)
       (Engine.Flight_recorder.capacity fr)
   | None -> ());
  if overhead >= 0.05 then begin
    Printf.eprintf
      "telemetry: median overhead %.2f%% >= 5%% budget (on %.1f us, off %.1f \
       us)\n"
      (100.0 *. overhead) (1e6 *. m_on) (1e6 *. m_off);
    exit 1
  end;
  pf "within the 5%% budget\n"

(* ------------------------------------------------------------------ *)
(* Shadow-audit guard (DESIGN.md §15), two halves. Overhead: serving with
   a 1%-rate auditor attached must cost < 5% median estimate latency vs.
   an auditor-free engine (the tap is a hash test plus, on the sampled 1%,
   a bounded push — the audit domain's work happens off the serving
   thread). Agreement: the q-errors the background auditor hands back
   through sample -> audit domain -> drain must equal the offline
   [Auditor.audit_one] arithmetic to float equality, and the two window
   renderings must be byte-identical — the invariant that lets the smoke
   diff a served AUDIT reply against an `xseed audit` report. *)

let audit_bench () =
  header "Shadow audit: tap overhead + served-vs-offline agreement";
  let ds = xmark10 in
  let passes = scale 10 16 in
  let queries = bp_queries ds @ cp_queries ds in
  let mk_estimator () =
    Core.Estimator.create ~card_threshold:ds.card_threshold
      (Lazy.force ds.kernel)
  in
  let storage = Lazy.force ds.storage in
  (* Overhead: alternating passes over a cold cache, as in [telemetry]. *)
  let audited_engine = Engine.create ~telemetry:false ~cache_capacity:4096
      (mk_estimator ())
  in
  let auditor =
    Engine.Auditor.create ~rate:0.01
      (Engine.Auditor.Loaded { estimator = mk_estimator (); storage })
  in
  Engine.set_auditor audited_engine auditor;
  let bare_engine =
    Engine.create ~telemetry:false ~cache_capacity:4096 (mk_estimator ())
  in
  let lat_on = ref [] and lat_off = ref [] in
  let run_pass engine sink =
    Engine.invalidate engine;
    List.iter
      (fun q ->
        let t0 = Unix.gettimeofday () in
        (match Engine.estimate_ast engine q with
         | Ok _ -> ()
         | Error e -> raise (Core.Error.Xseed e));
        sink := (Unix.gettimeofday () -. t0) :: !sink)
      queries
  in
  run_pass audited_engine (ref []);
  run_pass bare_engine (ref []);
  for _ = 1 to passes do
    run_pass bare_engine lat_off;
    run_pass audited_engine lat_on
  done;
  ignore (Engine.Auditor.settle auditor : bool);
  Engine.drain_audits audited_engine;
  Engine.Auditor.shutdown auditor;
  let median samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let m_on = median !lat_on and m_off = median !lat_off in
  let overhead = (m_on -. m_off) /. m_off in
  pf "%d queries x %d passes (cache invalidated per pass; XMark)\n\n"
    (List.length queries) passes;
  pf "%-24s %14s\n" "mode" "median/query";
  pf "%-24s %11.1f us\n" "auditor off" (1e6 *. m_off);
  pf "%-24s %11.1f us\n" "auditor at 1%" (1e6 *. m_on);
  pf "%-24s %+13.2f%%\n" "overhead" (100.0 *. overhead);
  if overhead >= 0.05 then begin
    Printf.eprintf
      "audit: median tap overhead %.2f%% >= 5%% budget (on %.1f us, off \
       %.1f us)\n"
      (100.0 *. overhead) (1e6 *. m_on) (1e6 *. m_off);
    exit 1
  end;
  pf "within the 5%% budget\n\n";
  (* Agreement: rate 1.0 through the background pipeline vs. synchronous
     offline audits of the same served estimates. *)
  let serve_est = mk_estimator () in
  let ept = lazy (Core.Estimator.ept serve_est) in
  let full =
    Engine.Auditor.create ~rate:1.0
      ~queue_capacity:(List.length queries + 1)
      (Engine.Auditor.Loaded { estimator = mk_estimator (); storage })
  in
  let offline = ref [] in
  List.iter
    (fun q ->
      let ast = Engine.Canonical.canonicalize q in
      let key = Engine.Canonical.of_ast ast in
      let estimate =
        match Core.Estimator.estimate_result_on serve_est ept ast with
        | Ok o -> o.Core.Estimator.value
        | Error e -> raise (Core.Error.Xseed e)
      in
      Engine.Auditor.sample full ~query:key.Engine.Canonical.text
        ~hash:key.Engine.Canonical.hash ~ast ~estimate;
      match
        Engine.Auditor.audit_one ~estimator:serve_est ~ept ~storage ~estimate
          ast
      with
      | Ok a -> offline := a :: !offline
      | Error msg -> failwith ("audit: offline audit failed: " ^ msg))
    queries;
  if not (Engine.Auditor.settle full) then begin
    Printf.eprintf "audit: auditor failed to settle within 5s\n";
    exit 1
  end;
  let audited = ref [] in
  Engine.Auditor.drain full (fun a -> audited := a :: !audited);
  Engine.Auditor.shutdown full;
  let audited = List.rev !audited and offline = List.rev !offline in
  if List.length audited <> List.length offline then begin
    Printf.eprintf "audit: %d background audits vs %d offline\n"
      (List.length audited) (List.length offline);
    exit 1
  end;
  List.iter2
    (fun (a : Engine.Auditor.audited) (b : Engine.Auditor.audited) ->
      if a.Engine.Auditor.qerror <> b.Engine.Auditor.qerror
         || a.Engine.Auditor.actual <> b.Engine.Auditor.actual
      then begin
        Printf.eprintf
          "audit: %s: background (qerror %.17g, actual %d) <> offline \
           (qerror %.17g, actual %d)\n"
          a.Engine.Auditor.query a.Engine.Auditor.qerror
          a.Engine.Auditor.actual b.Engine.Auditor.qerror
          b.Engine.Auditor.actual;
        exit 1
      end)
    audited offline;
  let window l =
    Obs.Json.to_string
      (Engine.Auditor.window_json
         (Array.of_list (List.map (fun a -> a.Engine.Auditor.qerror) l)))
  in
  if window audited <> window offline then begin
    Printf.eprintf "audit: window mismatch: %s vs %s\n" (window audited)
      (window offline);
    exit 1
  end;
  pf "%d audits: background q-errors equal offline to float equality\n"
    (List.length audited);
  pf "window agreement: %s\n" (window audited)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel): per-operation latency. *)

let micro () =
  header "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let doc = Datagen.Xmark.generate ~seed:55 ~items:40 () in
  let kernel = Core.Builder.of_string doc in
  let storage = Nok.Storage.of_string doc in
  let estimator = Core.Estimator.create kernel in
  let sp = Xpath.Parser.parse "/site/open_auctions/open_auction/bidder" in
  let bp = Xpath.Parser.parse "/site/regions/australia/item[shipping]/location" in
  let cp = Xpath.Parser.parse "//item[.//text]//incategory" in
  let tests =
    [ Test.make ~name:"kernel-build"
        (Staged.stage (fun () ->
             ignore (Core.Builder.of_string doc : Core.Kernel.t)));
      Test.make ~name:"estimate-sp"
        (Staged.stage (fun () ->
             ignore (Core.Estimator.estimate estimator sp : float)));
      Test.make ~name:"estimate-bp"
        (Staged.stage (fun () ->
             ignore (Core.Estimator.estimate estimator bp : float)));
      Test.make ~name:"estimate-cp"
        (Staged.stage (fun () ->
             ignore (Core.Estimator.estimate estimator cp : float)));
      Test.make ~name:"nok-eval-sp"
        (Staged.stage (fun () -> ignore (Nok.Eval.cardinality storage sp : int)));
      Test.make ~name:"nok-eval-cp"
        (Staged.stage (fun () -> ignore (Nok.Eval.cardinality storage cp : int)));
      Test.make ~name:"counter-stacks-100-ops"
        (Staged.stage (fun () ->
             let cs = Core.Counter_stacks.create () in
             let order = Array.init 100 (fun i -> i mod 7) in
             Array.iter (fun i -> ignore (Core.Counter_stacks.push cs i : int)) order;
             for i = 99 downto 0 do
               Core.Counter_stacks.pop cs order.(i)
             done)) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second (scale 0.2 0.5)) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"xseed" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  pf "%-34s %16s\n" "operation" "time/run";
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
          else Printf.sprintf "%10.0f ns" ns
        in
        pf "%-34s %16s\n" name pretty
      | _ -> pf "%-34s %16s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table2", table2); ("table3", table3); ("fig5", fig5); ("fig6", fig6);
    ("sec64", sec64); ("ablation", ablation); ("values", values);
    ("feedback", feedback); ("telemetry", telemetry); ("audit", audit_bench);
    ("parallel", parallel); ("profile", profile_section);
    ("json", bench_json); ("micro", micro) ]

let () =
  let requested =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> a <> "--quick" && a <> "all")
  in
  let to_run =
    match requested with
    | [] -> List.map snd sections
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> f
          | None ->
            Printf.eprintf "unknown section %s (have: %s)\n" n
              (String.concat " " (List.map fst sections));
            exit 2)
        names
  in
  pf "XSEED benchmark harness%s\n" (if quick then " (--quick scales)" else "");
  let (), total = time (fun () -> List.iter (fun f -> f ()) to_run) in
  pf "\ntotal: %.1f s\n" total
